// Package core implements the paper's contribution: effective-bandwidth
// monitoring and the Pattern-Based Searching (PBS) TLP managers PBS-WS,
// PBS-FI, and PBS-HS (Section V).
//
// PBS finds, online, the per-application TLP combination that maximizes an
// EB-based system metric. Instead of exhaustively sampling all 64
// combinations, it exploits the pattern that an application's EB
// inflection point sits at the same TLP level regardless of the
// co-runners' TLP:
//
//  1. (Guideline-1) start from maxTLP for everyone so resources are not
//     under-utilized;
//  2. sweep each application's TLP with the co-runners pinned at maxTLP
//     and find the *critical application* — the one whose sweep causes
//     the largest drop in the EB metric — then pin it at its inflection
//     point (the sweep's argmax);
//  3. tune the non-critical application(s) downward from maxTLP and stop
//     as soon as the metric no longer improves.
//
// Every step executes for real on the simulated GPU, so all sampling
// overheads (suboptimal exploration windows, settling time after a TLP
// change, decision relay latency) are paid exactly as the paper models
// them. The search restarts whenever a kernel is re-launched.
package core

import (
	"fmt"
	"sort"

	"ebm/internal/config"
	"ebm/internal/metrics"
	"ebm/internal/tlp"
)

// ScaleMode selects how PBS-FI / PBS-HS obtain the alone-EB scaling
// factors of Section IV.
type ScaleMode int

const (
	// NoScale uses raw EB values (the paper's choice for optimizing WS).
	NoScale ScaleMode = iota
	// GroupScale uses user-supplied per-application values (the paper's
	// "group information" — the average alone-EB of the app's group).
	GroupScale
	// SampledScale measures each application's EB online while the
	// co-runners run at TLP=1 (least interference), approximating its
	// alone EB.
	SampledScale
)

// String implements fmt.Stringer.
func (m ScaleMode) String() string {
	switch m {
	case NoScale:
		return "none"
	case GroupScale:
		return "group"
	case SampledScale:
		return "sampled"
	default:
		return fmt.Sprintf("ScaleMode(%d)", int(m))
	}
}

// TableEntry is one line of the Fig. 8 sampling table: the EB of every
// application observed under one TLP combination.
type TableEntry struct {
	TLP []int
	EB  []float64
}

// tableSize is the hardware sampling-table capacity (Fig. 8).
const tableSize = 16

type phase int

const (
	phInit   phase = iota // apply (max,max,...), settle
	phScale               // sampled-scale measurement rounds
	phSweep               // per-app TLP sweeps (find the critical app)
	phTune                // tune the non-critical apps
	phStable              // hold the chosen combination
)

func (p phase) String() string {
	switch p {
	case phInit:
		return "init"
	case phScale:
		return "scale"
	case phSweep:
		return "sweep"
	case phTune:
		return "tune"
	case phStable:
		return "stable"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// PBS is the online pattern-based searching TLP manager.
type PBS struct {
	// Objective selects the EB metric: ObjWS -> PBS-WS, ObjFI -> PBS-FI,
	// ObjHS -> PBS-HS.
	Objective metrics.Objective

	// Scaling selects the alone-EB scaling source; GroupValues supplies
	// the factors when Scaling == GroupScale.
	Scaling     ScaleMode
	GroupValues []float64

	// SweepLevels are the TLP levels probed during the critical-app
	// sweep (default 1,2,4,8,16,24).
	SweepLevels []int

	// SettleWindows is how many sampling windows to discard after every
	// TLP change before trusting a measurement (cache warm-up).
	SettleWindows int

	// MeasureWindows is how many post-settle windows are averaged into
	// one observation. The designated-core/partition sampling hardware is
	// cheap but noisy; averaging is the paper's "monitoring interval of N
	// cycles per combination" knob.
	MeasureWindows int

	// TunePatience is how many consecutive non-improving tuning steps are
	// tolerated before the search stops and reverts to the best level
	// seen (guards against a noisy window ending the search early).
	TunePatience int

	// FullSearchEvery controls how often a kernel relaunch triggers a
	// full sweep-based re-search instead of a quick re-tune. The pattern
	// property (inflection points persist across co-runner behaviour) is
	// exactly what makes the quick path sound: the critical application
	// and its inflection are retained and only the non-critical TLPs are
	// re-tuned against the new interference. Every FullSearchEvery-th
	// relaunch re-validates the pattern with full sweeps. 1 forces a full
	// search every time.
	FullSearchEvery int

	// DriftThreshold, when positive, enables re-searching without a
	// kernel relaunch (an extension beyond the paper): if the observed
	// metric stays below DriftThreshold x the value the search locked in
	// for DriftWindows consecutive stable windows, the interference has
	// shifted and the sweeps restart. Zero disables.
	DriftThreshold float64
	DriftWindows   int

	numApps int
	ph      phase
	settle  int
	cur     tlp.Decision

	scale    []float64
	scaleApp int

	sweepApp   int
	sweepIdx   int
	sweepM     [][]float64 // [app][levelIdx] metric
	ownEB      [][]float64 // [app][levelIdx] that app's own EB during its sweep
	sweepD     [][]float64 // [app][levelIdx] scaled EB-difference (FI mode)
	sweepSum   [][]float64 // [app][levelIdx] scaled EB sum (FI-mode health)
	sweepRawA  [][]float64 // [app][levelIdx] raw EB of app 0 (FI mode)
	sweepRawB  [][]float64 // [app][levelIdx] raw EB of app 1 (FI mode)
	capLevel   []int       // per-app Guideline-2 cap: own-EB inflection level
	critical   int
	fixedTLP   int
	tuneOrder  []int // apps to tune, after the critical one
	tuneAppIdx int
	tuneLvlIdx int // index into descending levels
	tuneBestM  float64
	tuneBestT  int
	tuneMiss   int
	haveBest   bool
	tuneDiffs  []float64 // FI mode: EB-difference per visited tune level
	tuneSums   []float64 // FI mode: scaled EB sum per visited tune level

	stableM    float64 // metric value when the search stabilized
	driftCount int

	// Measurement accumulator (averaging MeasureWindows windows).
	accN   int
	accM   float64
	accEB  []float64
	accD   float64
	accSum float64

	sinceFull int // relaunch-restarts since the last full sweep search

	table    []TableEntry
	searches uint64 // completed searches (telemetry)
	restarts uint64
	drifts   uint64
}

// NewPBS returns a PBS manager for the given objective. PBS-FI and PBS-HS
// default to sampled scaling (no user input needed); pass GroupValues and
// set Scaling to GroupScale to use group information instead.
func NewPBS(obj metrics.Objective) *PBS {
	p := &PBS{
		Objective:       obj,
		SweepLevels:     []int{1, 2, 4, 8, 16, 24},
		SettleWindows:   1,
		MeasureWindows:  2,
		TunePatience:    2,
		FullSearchEvery: 4,
	}
	if obj != metrics.ObjWS {
		p.Scaling = SampledScale
	}
	return p
}

// Name implements tlp.Manager.
func (p *PBS) Name() string {
	n := "PBS-" + p.Objective.String()
	if p.Objective != metrics.ObjWS {
		n += "(" + p.Scaling.String() + ")"
	}
	return n
}

// Initial implements tlp.Manager.
func (p *PBS) Initial(numApps int) tlp.Decision {
	p.numApps = numApps
	p.cur = tlp.NewDecision(numApps, config.MaxTLP)
	p.ph = phInit
	p.settle = p.SettleWindows
	p.scale = nil
	if p.Scaling == GroupScale {
		p.scale = append([]float64(nil), p.GroupValues...)
	}
	p.resetSearch()
	return p.cur.Clone()
}

func (p *PBS) resetSearch() {
	p.sweepApp = 0
	p.sweepIdx = 0
	p.sweepM = make([][]float64, p.numApps)
	p.ownEB = make([][]float64, p.numApps)
	p.sweepD = make([][]float64, p.numApps)
	p.sweepSum = make([][]float64, p.numApps)
	p.sweepRawA = make([][]float64, p.numApps)
	p.sweepRawB = make([][]float64, p.numApps)
	for i := range p.sweepM {
		p.sweepM[i] = make([]float64, len(p.SweepLevels))
		p.ownEB[i] = make([]float64, len(p.SweepLevels))
		p.sweepD[i] = make([]float64, len(p.SweepLevels))
		p.sweepSum[i] = make([]float64, len(p.SweepLevels))
		p.sweepRawA[i] = make([]float64, len(p.SweepLevels))
		p.sweepRawB[i] = make([]float64, len(p.SweepLevels))
	}
	if p.Scaling == SampledScale {
		p.scale = nil // re-measure after the sweeps
	}
	p.capLevel = nil
	p.tuneDiffs = nil
	p.tuneSums = nil
	p.stableM = 0
	p.driftCount = 0
	p.resetAcc()
	p.critical = -1
	p.tuneOrder = nil
	p.tuneAppIdx = 0
	p.tuneLvlIdx = 0
	p.haveBest = false
	p.scaleApp = 0
}

// metric evaluates the objective's EB metric over a sample.
func (p *PBS) metric(s tlp.Sample) float64 {
	ebs := make([]float64, len(s.Apps))
	for i := range s.Apps {
		ebs[i] = s.Apps[i].EB
	}
	var scale []float64
	if p.Objective != metrics.ObjWS && p.Scaling != NoScale {
		scale = p.scale
	}
	return p.Objective.EBMetric(ebs, scale)
}

// record stores one probed combination's averaged EBs in the bounded
// hardware sampling table.
func (p *PBS) record(ebs []float64) {
	e := TableEntry{TLP: make([]int, p.numApps), EB: make([]float64, p.numApps)}
	for i := 0; i < p.numApps && i < len(ebs); i++ {
		e.TLP[i] = config.ClampToLevel(p.cur.TLP[i])
		e.EB[i] = ebs[i]
	}
	if len(p.table) >= tableSize {
		copy(p.table, p.table[1:])
		p.table = p.table[:tableSize-1]
	}
	p.table = append(p.table, e)
}

// Table returns a copy of the sampling table contents.
func (p *PBS) Table() []TableEntry {
	out := make([]TableEntry, len(p.table))
	copy(out, p.table)
	return out
}

// Searches returns how many full searches have completed.
func (p *PBS) Searches() uint64 { return p.searches }

// Restarts returns how many kernel-relaunch restarts occurred.
func (p *PBS) Restarts() uint64 { return p.restarts }

// Drifts returns how many drift-triggered re-searches occurred (only
// non-zero when DriftThreshold is enabled).
func (p *PBS) Drifts() uint64 { return p.drifts }

// Phase returns the current phase name (tracing/tests).
func (p *PBS) Phase() string { return p.ph.String() }

// Searching reports whether PBS is currently exploring (the shaded
// sampling periods of Fig. 11).
func (p *PBS) Searching() bool { return p.ph != phStable }

// OnSample implements tlp.Manager: one step of the search state machine.
func (p *PBS) OnSample(s tlp.Sample) tlp.Decision {
	if p.numApps != len(s.Apps) {
		p.Initial(len(s.Apps))
	}

	// A kernel relaunch restarts the search (Section V-E). Thanks to the
	// pattern property, most restarts only re-tune; full sweeps re-run
	// every FullSearchEvery-th relaunch.
	for i := range s.Apps {
		if s.Apps[i].KernelRelaunched && p.ph == phStable {
			p.restarts++
			if p.searches > 0 && p.critical >= 0 && p.sinceFull+1 < max(1, p.FullSearchEvery) {
				p.sinceFull++
				p.startQuickTune()
			} else {
				p.sinceFull = 0
				p.startSweeps()
			}
			return p.cur.Clone()
		}
	}

	if p.settle > 0 {
		p.settle--
		return p.cur.Clone()
	}

	// Accumulate this window into the current observation; act only once
	// MeasureWindows windows have been averaged.
	p.accumulate(s)
	if p.accN < max(1, p.MeasureWindows) {
		return p.cur.Clone()
	}
	m, ebs, d, sum := p.takeMeasurement()
	if p.ph != phStable {
		// One sampling-table row per probed combination (Fig. 8).
		p.record(ebs)
	}

	switch p.ph {
	case phInit:
		// Utilization established at maxTLP (Guideline-1); run the sweeps.
		// Sampled alone-EB scaling, when needed, happens after the sweeps
		// so each application can be measured at its own inflection TLP
		// (the online stand-in for "alone at bestTLP", Section IV).
		p.startSweeps()

	case phScale:
		// The windows just measured app scaleApp at its inflection cap
		// with every co-runner at TLP 1 (least interference): its EB
		// approximates the alone EB at bestTLP.
		if p.scale == nil {
			p.scale = make([]float64, p.numApps)
		}
		p.scale[p.scaleApp] = ebs[p.scaleApp]
		p.scaleApp++
		if p.scaleApp < p.numApps {
			p.applyScaleCombo()
		} else {
			p.finishSweeps()
		}

	case phSweep:
		p.sweepM[p.sweepApp][p.sweepIdx] = m
		p.ownEB[p.sweepApp][p.sweepIdx] = ebs[p.sweepApp]
		if p.fiMode() {
			p.sweepRawA[p.sweepApp][p.sweepIdx] = ebs[0]
			p.sweepRawB[p.sweepApp][p.sweepIdx] = ebs[1]
		}
		p.sweepIdx++
		if p.sweepIdx >= len(p.SweepLevels) {
			p.sweepIdx = 0
			p.sweepApp++
		}
		if p.sweepApp < p.numApps {
			p.applySweepCombo()
		} else {
			p.computeCaps()
			if p.fiMode() && p.Scaling == SampledScale {
				// Measure the alone-EB scaling factors before analyzing.
				p.ph = phScale
				p.scaleApp = 0
				p.applyScaleCombo()
			} else {
				p.finishSweeps()
			}
		}

	case phTune:
		if p.fiMode() {
			p.tuneStepFI(d, sum)
		} else {
			p.tuneStep(m)
		}

	case phStable:
		// Hold, optionally watching for interference drift (the paper
		// restarts only on kernel relaunch; DriftThreshold extends that).
		if p.DriftThreshold > 0 {
			if p.stableM == 0 {
				p.stableM = m
			}
			if m < p.DriftThreshold*p.stableM {
				p.driftCount++
				if p.driftCount >= max(1, p.DriftWindows) {
					p.drifts++
					p.startSweeps()
				}
			} else {
				p.driftCount = 0
				// Track slow improvement so the reference stays honest.
				if m > p.stableM {
					p.stableM = m
				}
			}
		}
	}
	return p.cur.Clone()
}

// resetAcc clears the measurement accumulator.
func (p *PBS) resetAcc() {
	p.accN = 0
	p.accM = 0
	p.accD = 0
	p.accSum = 0
	if p.accEB == nil || len(p.accEB) != p.numApps {
		p.accEB = make([]float64, p.numApps)
	} else {
		for i := range p.accEB {
			p.accEB[i] = 0
		}
	}
}

// accumulate folds one window into the current observation.
func (p *PBS) accumulate(s tlp.Sample) {
	if p.accEB == nil || len(p.accEB) != p.numApps {
		p.resetAcc()
	}
	p.accM += p.metric(s)
	for i := range s.Apps {
		p.accEB[i] += s.Apps[i].EB
	}
	if p.fiMode() {
		d, sum := p.scaledDiff(s)
		p.accD += d
		p.accSum += sum
	}
	p.accN++
}

// takeMeasurement returns the averaged observation and resets the
// accumulator.
func (p *PBS) takeMeasurement() (m float64, ebs []float64, d, sum float64) {
	n := float64(p.accN)
	m = p.accM / n
	ebs = make([]float64, p.numApps)
	for i := range ebs {
		ebs[i] = p.accEB[i] / n
	}
	d = p.accD / n
	sum = p.accSum / n
	p.resetAcc()
	return
}

// applyScaleCombo runs scaleApp at its own inflection cap (the online
// approximation of bestTLP) with all co-runners throttled to TLP 1, the
// least-interference configuration the paper prescribes for approximating
// alone EB.
func (p *PBS) applyScaleCombo() {
	own := config.MaxTLP
	if p.ownEB != nil {
		// The app's own-EB peak during its sweep approximates bestTLP.
		_, am := dropAndArgmax(p.ownEB[p.scaleApp])
		own = p.SweepLevels[am]
	}
	for i := range p.cur.TLP {
		if i == p.scaleApp {
			p.cur.TLP[i] = own
		} else {
			p.cur.TLP[i] = 1
		}
	}
	p.settle = p.SettleWindows
}

func (p *PBS) startSweeps() {
	p.resetSearch()
	p.ph = phSweep
	p.applySweepCombo()
}

// startQuickTune re-enters the tuning phase reusing the previous search's
// critical application, inflection pin, caps, and tune order.
func (p *PBS) startQuickTune() {
	for i := range p.cur.TLP {
		if i == p.critical {
			p.cur.TLP[i] = p.fixedTLP
		} else {
			p.cur.TLP[i] = p.capLevel[i]
		}
	}
	p.ph = phTune
	p.tuneAppIdx = 0
	p.tuneLvlIdx = 0
	p.tuneMiss = 0
	p.haveBest = false
	p.tuneDiffs = p.tuneDiffs[:0]
	p.tuneSums = p.tuneSums[:0]
	p.resetAcc()
	p.stableM = 0
	p.driftCount = 0
	p.settle = p.SettleWindows
}

// applySweepCombo sets sweepApp to SweepLevels[sweepIdx] and everyone else
// to maxTLP.
func (p *PBS) applySweepCombo() {
	for i := range p.cur.TLP {
		if i == p.sweepApp {
			p.cur.TLP[i] = p.SweepLevels[p.sweepIdx]
		} else {
			p.cur.TLP[i] = config.MaxTLP
		}
	}
	p.settle = p.SettleWindows
}

// fiMode reports whether the paper's pairwise EB-difference procedure
// (Section V-C, Fig. 7) drives the search instead of the generic metric
// climb. It applies to two-application workloads optimizing FI.
func (p *PBS) fiMode() bool {
	return p.Objective == metrics.ObjFI && p.numApps == 2
}

// scaledDiff returns the scaled EB-difference (app0 - app1) and the scaled
// EB sum for a sample. A low |difference| means a balanced (fair) system;
// the sum guards against "fair but dead" points where both applications
// are starved.
func (p *PBS) scaledDiff(s tlp.Sample) (diff, sum float64) {
	e0, e1 := s.Apps[0].EB, s.Apps[1].EB
	if p.scale != nil && len(p.scale) >= 2 {
		if p.scale[0] > 0 {
			e0 /= p.scale[0]
		}
		if p.scale[1] > 0 {
			e1 /= p.scale[1]
		}
	}
	return e0 - e1, e0 + e1
}

// chooseByDiff picks the index whose EB-difference is "near zero" in the
// paper's sense: prefer an actual sign crossing (the balance point the
// Fig. 7 curves pass through); among crossings take the endpoint with the
// smaller |diff|. Without a crossing, take the smallest |diff| among
// levels that are healthy (scaled EB sum at least healthyFrac of the
// maximum seen), so mutual-starvation points do not masquerade as fair.
func chooseByDiff(diffs, sums []float64) int {
	const healthyFrac = 0.4
	best := -1
	for i := 0; i+1 < len(diffs); i++ {
		if (diffs[i] <= 0) == (diffs[i+1] <= 0) {
			continue
		}
		cand := i
		if abs(diffs[i+1]) < abs(diffs[i]) {
			cand = i + 1
		}
		if best == -1 || abs(diffs[cand]) < abs(diffs[best]) {
			best = cand
		}
	}
	if best >= 0 {
		return best
	}
	maxSum := 0.0
	for _, s := range sums {
		if s > maxSum {
			maxSum = s
		}
	}
	for i, d := range diffs {
		if sums[i] < healthyFrac*maxSum {
			continue
		}
		if best == -1 || abs(d) < abs(diffs[best]) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	// Degenerate: everything unhealthy; fall back to global argmin.
	best = 0
	for i := range diffs {
		if abs(diffs[i]) < abs(diffs[best]) {
			best = i
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// curveRange returns max-min of a curve (the paper's "larger changes in
// EB-difference" criticality test).
func curveRange(m []float64) float64 {
	if len(m) == 0 {
		return 0
	}
	lo, hi := m[0], m[0]
	for _, v := range m {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// computeCaps derives the Guideline-2 TLP caps: an application's own-EB
// curve caps the TLP it may be given — past its inflection the
// application overwhelms resources and its EB collapses. The cap only
// excludes levels where the app's own EB has fallen far below its peak,
// so noisy-flat curves (an app crushed by the pinned co-runner) impose no
// cap.
func (p *PBS) computeCaps() {
	p.capLevel = make([]int, p.numApps)
	for app := 0; app < p.numApps; app++ {
		p.capLevel[app] = capByCollapse(p.ownEB[app], p.SweepLevels)
	}
}

// finishSweeps identifies the critical application and its inflection
// point, fixes it, and begins tuning the others.
func (p *PBS) finishSweeps() {
	if p.capLevel == nil {
		p.computeCaps()
	}

	if p.fiMode() {
		// Derive the scaled difference curves from the raw sweep EBs and
		// the (possibly just-sampled) scaling factors.
		for app := 0; app < p.numApps; app++ {
			for li := range p.SweepLevels {
				e0, e1 := p.sweepRawA[app][li], p.sweepRawB[app][li]
				if p.scale != nil && len(p.scale) >= 2 {
					if p.scale[0] > 0 {
						e0 /= p.scale[0]
					}
					if p.scale[1] > 0 {
						e1 /= p.scale[1]
					}
				}
				p.sweepD[app][li] = e0 - e1
				p.sweepSum[app][li] = e0 + e1
			}
		}
		// Section V-C: the application inducing larger changes in the
		// EB-difference is critical; fix it where the difference is near
		// zero (the balance crossing).
		if curveRange(p.sweepD[0]) >= curveRange(p.sweepD[1]) {
			p.critical = 0
		} else {
			p.critical = 1
		}
		idx := chooseByDiff(p.sweepD[p.critical], p.sweepSum[p.critical])
		p.fixedTLP = p.SweepLevels[idx]
	} else {
		bestDrop := -1.0
		for app := 0; app < p.numApps; app++ {
			drop, _ := dropAndArgmax(p.sweepM[app])
			if drop > bestDrop {
				bestDrop = drop
				p.critical = app
			}
		}
		_, argmax := dropAndArgmax(p.sweepM[p.critical])
		p.fixedTLP = p.SweepLevels[argmax]
	}
	if p.fixedTLP > p.capLevel[p.critical] {
		p.fixedTLP = p.capLevel[p.critical]
	}

	// Tune the remaining apps in order of decreasing sweep drop (most
	// disruptive first).
	for app := 0; app < p.numApps; app++ {
		if app != p.critical {
			p.tuneOrder = append(p.tuneOrder, app)
		}
	}
	sort.SliceStable(p.tuneOrder, func(i, j int) bool {
		di, _ := dropAndArgmax(p.sweepM[p.tuneOrder[i]])
		dj, _ := dropAndArgmax(p.sweepM[p.tuneOrder[j]])
		return di > dj
	})

	for i := range p.cur.TLP {
		if i == p.critical {
			p.cur.TLP[i] = p.fixedTLP
		} else {
			p.cur.TLP[i] = p.capLevel[i]
		}
	}
	p.ph = phTune
	p.tuneAppIdx = 0
	p.tuneLvlIdx = 0
	p.tuneMiss = 0
	p.haveBest = false
	p.settle = p.SettleWindows
}

// tuneLevelsFor returns the descending candidate levels for tuning app,
// excluding levels past the app's Guideline-2 inflection cap.
func (p *PBS) tuneLevelsFor(app int) []int {
	cap := config.MaxTLP
	if p.capLevel != nil {
		cap = p.capLevel[app]
	}
	var lv []int
	for _, l := range p.SweepLevels {
		if l <= cap {
			lv = append(lv, l)
		}
	}
	if len(lv) == 0 {
		lv = []int{p.SweepLevels[0]}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lv)))
	return lv
}

// tuneStep consumes the measurement of the current tuning combination and
// either advances to the next level, the next app, or stabilizes.
func (p *PBS) tuneStep(m float64) {
	app := p.tuneOrder[p.tuneAppIdx]
	levels := p.tuneLevelsFor(app)

	if !p.haveBest || m > p.tuneBestM {
		p.tuneBestM = m
		p.tuneBestT = levels[p.tuneLvlIdx]
		p.tuneMiss = 0
		p.haveBest = true
	} else {
		p.tuneMiss++
	}
	p.tuneLvlIdx++
	if p.tuneLvlIdx < len(levels) && p.tuneMiss < p.TunePatience {
		p.cur.TLP[app] = levels[p.tuneLvlIdx]
		p.settle = p.SettleWindows
		return
	}

	// Done with this app: revert to its best level and move on.
	p.cur.TLP[app] = p.tuneBestT
	p.tuneAppIdx++
	if p.tuneAppIdx < len(p.tuneOrder) {
		next := p.tuneOrder[p.tuneAppIdx]
		p.tuneLvlIdx = 0
		p.tuneMiss = 0
		p.haveBest = false
		p.cur.TLP[next] = p.tuneLevelsFor(next)[0]
		p.settle = p.SettleWindows
		return
	}
	p.ph = phStable
	p.searches++
	p.settle = p.SettleWindows
}

// tuneStepFI runs the FI tuning scan: the non-critical application visits
// every capped level (descending) while the EB-difference is recorded;
// the level nearest the balance crossing wins (Fig. 7b: "searching is
// stopped when the lowest absolute EB-difference is found").
func (p *PBS) tuneStepFI(d, sum float64) {
	app := p.tuneOrder[p.tuneAppIdx]
	levels := p.tuneLevelsFor(app)

	p.tuneDiffs = append(p.tuneDiffs, d)
	p.tuneSums = append(p.tuneSums, sum)

	p.tuneLvlIdx++
	if p.tuneLvlIdx < len(levels) {
		p.cur.TLP[app] = levels[p.tuneLvlIdx]
		p.settle = p.SettleWindows
		return
	}
	pick := chooseByDiff(p.tuneDiffs, p.tuneSums)
	p.cur.TLP[app] = levels[pick]
	p.tuneAppIdx++
	if p.tuneAppIdx < len(p.tuneOrder) {
		next := p.tuneOrder[p.tuneAppIdx]
		p.tuneLvlIdx = 0
		p.tuneDiffs = p.tuneDiffs[:0]
		p.tuneSums = p.tuneSums[:0]
		p.cur.TLP[next] = p.tuneLevelsFor(next)[0]
		p.settle = p.SettleWindows
		return
	}
	p.ph = phStable
	p.searches++
	p.settle = p.SettleWindows
}

// collapseFrac is the fraction of an application's peak own-EB below
// which a TLP level counts as past the inflection (Guideline-2).
const collapseFrac = 0.6

// capByCollapse returns the largest level whose own-EB retains at least
// collapseFrac of the curve's peak. Flat or rising curves return the top
// level (no cap).
func capByCollapse(curve []float64, levels []int) int {
	if len(curve) == 0 {
		return levels[len(levels)-1]
	}
	peak := curve[0]
	for _, v := range curve {
		if v > peak {
			peak = v
		}
	}
	for i := len(curve) - 1; i >= 0; i-- {
		if curve[i] >= collapseFrac*peak {
			return levels[i]
		}
	}
	return levels[0]
}

// dropAndArgmax returns the magnitude of the sharpest post-peak decline
// in the metric curve and the index of the curve's maximum (the inflection
// point).
func dropAndArgmax(m []float64) (drop float64, argmax int) {
	if len(m) == 0 {
		return 0, 0
	}
	maxV := m[0]
	for i, v := range m {
		if v > maxV {
			maxV = v
			argmax = i
		}
	}
	minAfter := maxV
	for _, v := range m[argmax:] {
		if v < minAfter {
			minAfter = v
		}
	}
	return maxV - minAfter, argmax
}
