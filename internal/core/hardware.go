package core

import (
	"fmt"
	"strings"
)

// HardwareCost itemizes the storage, computation, and communication
// overheads of the proposed mechanism (Section V-E / Fig. 8), so the
// repository can regenerate the paper's overhead accounting for any
// machine shape.
type HardwareCost struct {
	NumApps          int
	NumCores         int
	NumMemPartitions int

	// Storage, in bits.
	PerCoreRegisterBits      int // L1 access + miss counters on the designated core
	PerPartitionRegisterBits int // per-app L2 access/miss + bandwidth counters
	SamplingTableBits        int // the 16-entry EB table in the warp issue arbiter
	TotalStorageBits         int

	// Communication: bits relayed from the designated partition to the
	// cores once per sampling window, and the modeled relay latency.
	RelayBitsPerWindow int
	RelayLatencyCycles int

	// Computation: comparisons per search step over the sampling table.
	TableEntries int
}

// CostModel returns the overhead accounting for a machine with the given
// shape. Counter widths follow the paper: two 32-bit registers per
// designated core; per memory partition, three 32-bit registers and one
// 50-bit bandwidth register per application.
func CostModel(numApps, numCores, numMemPartitions int) HardwareCost {
	const (
		ctrBits = 32
		bwBits  = 50
	)
	perCore := 2 * ctrBits
	perPart := numApps * (3*ctrBits + bwBits)
	// Sampling table: per entry, per app: TLP level (5 bits, <=24) and a
	// 16-bit fixed-point EB.
	tableBits := tableSize * numApps * (5 + 16)
	relay := numApps * (3*ctrBits + bwBits)
	return HardwareCost{
		NumApps:                  numApps,
		NumCores:                 numCores,
		NumMemPartitions:         numMemPartitions,
		PerCoreRegisterBits:      perCore,
		PerPartitionRegisterBits: perPart,
		SamplingTableBits:        tableBits,
		TotalStorageBits: numApps*perCore + // one designated core per app
			numMemPartitions*perPart + tableBits*numCores,
		RelayBitsPerWindow: relay,
		RelayLatencyCycles: 32,
		TableEntries:       tableSize,
	}
}

// String renders the accounting as the Fig. 8 style breakdown.
func (h HardwareCost) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PBS hardware overheads (%d apps, %d cores, %d partitions)\n",
		h.NumApps, h.NumCores, h.NumMemPartitions)
	fmt.Fprintf(&b, "  storage: %d bits/designated core, %d bits/partition, %d-bit sampling table/core\n",
		h.PerCoreRegisterBits, h.PerPartitionRegisterBits, h.SamplingTableBits)
	fmt.Fprintf(&b, "  storage total: %d bits (%.1f bytes/core equivalent)\n",
		h.TotalStorageBits, float64(h.TotalStorageBits)/8/float64(h.NumCores))
	fmt.Fprintf(&b, "  communication: %d bits relayed per sampling window, %d-cycle latency\n",
		h.RelayBitsPerWindow, h.RelayLatencyCycles)
	fmt.Fprintf(&b, "  computation: linear search over %d table entries per decision\n",
		h.TableEntries)
	return b.String()
}
