package core

import (
	"fmt"

	"ebm/internal/tlp"
)

// pbsState mirrors every mutable field of the PBS search state machine.
// Tuning-knob configuration (Objective, Scaling, SweepLevels, ...) is
// construction-time and re-derived from the scheme on restore. Nil-ness
// is load-bearing for Scale (nil means "re-measure after the sweeps" in
// SampledScale mode) and CapLevel; gob preserves nil for omitted slice
// fields and every non-nil occurrence of these slices has non-zero
// length, so the round trip is exact.
type pbsState struct {
	NumApps int
	Phase   int
	Settle  int
	TLP     []int
	Bypass  []bool

	Scale    []float64
	ScaleApp int

	SweepApp  int
	SweepIdx  int
	SweepM    [][]float64
	OwnEB     [][]float64
	SweepD    [][]float64
	SweepSum  [][]float64
	SweepRawA [][]float64
	SweepRawB [][]float64
	CapLevel  []int
	Critical  int
	FixedTLP  int

	TuneOrder  []int
	TuneAppIdx int
	TuneLvlIdx int
	TuneBestM  float64
	TuneBestT  int
	TuneMiss   int
	HaveBest   bool
	TuneDiffs  []float64
	TuneSums   []float64

	StableM    float64
	DriftCount int

	AccN   int
	AccM   float64
	AccEB  []float64
	AccD   float64
	AccSum float64

	SinceFull int

	Table    []TableEntry
	Searches uint64
	Restarts uint64
	Drifts   uint64
}

// StateBytes implements tlp.Stater.
func (p *PBS) StateBytes() ([]byte, error) {
	return tlp.EncodeState(pbsState{
		NumApps:    p.numApps,
		Phase:      int(p.ph),
		Settle:     p.settle,
		TLP:        p.cur.TLP,
		Bypass:     p.cur.BypassL1,
		Scale:      p.scale,
		ScaleApp:   p.scaleApp,
		SweepApp:   p.sweepApp,
		SweepIdx:   p.sweepIdx,
		SweepM:     p.sweepM,
		OwnEB:      p.ownEB,
		SweepD:     p.sweepD,
		SweepSum:   p.sweepSum,
		SweepRawA:  p.sweepRawA,
		SweepRawB:  p.sweepRawB,
		CapLevel:   p.capLevel,
		Critical:   p.critical,
		FixedTLP:   p.fixedTLP,
		TuneOrder:  p.tuneOrder,
		TuneAppIdx: p.tuneAppIdx,
		TuneLvlIdx: p.tuneLvlIdx,
		TuneBestM:  p.tuneBestM,
		TuneBestT:  p.tuneBestT,
		TuneMiss:   p.tuneMiss,
		HaveBest:   p.haveBest,
		TuneDiffs:  p.tuneDiffs,
		TuneSums:   p.tuneSums,
		StableM:    p.stableM,
		DriftCount: p.driftCount,
		AccN:       p.accN,
		AccM:       p.accM,
		AccEB:      p.accEB,
		AccD:       p.accD,
		AccSum:     p.accSum,
		SinceFull:  p.sinceFull,
		Table:      p.table,
		Searches:   p.searches,
		Restarts:   p.restarts,
		Drifts:     p.drifts,
	})
}

// SetStateBytes implements tlp.Stater.
func (p *PBS) SetStateBytes(b []byte) error {
	var st pbsState
	if err := tlp.DecodeState(b, &st); err != nil {
		return fmt.Errorf("core: pbs state: %w", err)
	}
	p.numApps = st.NumApps
	p.ph = phase(st.Phase)
	p.settle = st.Settle
	p.cur = tlp.Decision{TLP: st.TLP, BypassL1: st.Bypass}
	p.scale = st.Scale
	p.scaleApp = st.ScaleApp
	p.sweepApp = st.SweepApp
	p.sweepIdx = st.SweepIdx
	p.sweepM = st.SweepM
	p.ownEB = st.OwnEB
	p.sweepD = st.SweepD
	p.sweepSum = st.SweepSum
	p.sweepRawA = st.SweepRawA
	p.sweepRawB = st.SweepRawB
	p.capLevel = st.CapLevel
	p.critical = st.Critical
	p.fixedTLP = st.FixedTLP
	p.tuneOrder = st.TuneOrder
	p.tuneAppIdx = st.TuneAppIdx
	p.tuneLvlIdx = st.TuneLvlIdx
	p.tuneBestM = st.TuneBestM
	p.tuneBestT = st.TuneBestT
	p.tuneMiss = st.TuneMiss
	p.haveBest = st.HaveBest
	p.tuneDiffs = st.TuneDiffs
	p.tuneSums = st.TuneSums
	p.stableM = st.StableM
	p.driftCount = st.DriftCount
	p.accN = st.AccN
	p.accM = st.AccM
	p.accEB = st.AccEB
	p.accD = st.AccD
	p.accSum = st.AccSum
	p.sinceFull = st.SinceFull
	p.table = st.Table
	p.searches = st.Searches
	p.restarts = st.Restarts
	p.drifts = st.Drifts
	return nil
}
