package core

import (
	"testing"

	"ebm/internal/config"
	"ebm/internal/metrics"
	"ebm/internal/tlp"
)

// surface is a synthetic machine: it maps a TLP combination to per-app EB
// values, letting the search be tested against a known-optimal landscape.
type surface func(tlps []int) []float64

// levelPos maps a TLP value to a position in the canonical level list.
func levelPos(t *testing.T, v int) int {
	t.Helper()
	for i, l := range config.TLPLevels {
		if l == v {
			return i
		}
	}
	t.Fatalf("TLP %d not a level", v)
	return -1
}

// patterned builds a two-app surface with the paper's pattern property:
// app0 has a sharp own-EB inflection at TLP 4 (cache cliff) regardless of
// the co-runner; app1 is a streamer peaking at 8; each is mildly depressed
// by the other's load.
func patterned(t *testing.T) surface {
	shape0 := []float64{0.5, 0.8, 1.0, 0.45, 0.30, 0.20} // over {1,2,4,8,16,24}... indexes by level position below
	shape1 := []float64{0.30, 0.50, 0.70, 0.75, 0.80, 0.62, 0.55, 0.50}
	return func(tlps []int) []float64 {
		i0 := levelPos(t, tlps[0])
		i1 := levelPos(t, tlps[1])
		// shape0 is defined over the 6 sweep levels; expand to 8 by
		// mapping positions {0,1,2,4,6,7} and interpolating 3,5.
		s0 := []float64{shape0[0], shape0[1], shape0[2], (shape0[2] + shape0[3]) / 2,
			shape0[3], (shape0[3] + shape0[4]) / 2, shape0[4], shape0[5]}
		load0 := float64(tlps[0]) / 24
		load1 := float64(tlps[1]) / 24
		return []float64{
			s0[i0] * (1 - 0.25*load1),
			shape1[i1] * (1 - 0.25*load0),
		}
	}
}

// drive runs the manager against a surface for n windows, returning the
// final decision. Relaunch flags fire at the given window indices.
func drive(m tlp.Manager, surf surface, n int, relaunchAt map[int]bool) tlp.Decision {
	d := m.Initial(2)
	for w := 0; w < n; w++ {
		ebs := surf(clamped(d.TLP))
		s := tlp.Sample{Cycle: uint64(w+1) * 1000, Apps: []tlp.AppSample{
			{App: 0, TLP: clampOne(d.TLP[0]), EB: ebs[0], BW: ebs[0] / 4, CMR: 0.25},
			{App: 1, TLP: clampOne(d.TLP[1]), EB: ebs[1], BW: ebs[1] / 4, CMR: 0.25},
		}}
		if relaunchAt[w] {
			s.Apps[0].KernelRelaunched = true
		}
		s.TotalBW = s.Apps[0].BW + s.Apps[1].BW
		d = m.OnSample(s)
	}
	return d
}

func clamped(tlps []int) []int {
	out := make([]int, len(tlps))
	for i, v := range tlps {
		out[i] = config.ClampToLevel(v)
	}
	return out
}

func clampOne(v int) int { return config.ClampToLevel(v) }

// bestOnSurface brute-forces the surface for the combo maximizing eval.
func bestOnSurface(surf surface, eval func([]float64) float64) ([]int, float64) {
	var bestC []int
	best := -1.0
	for _, a := range config.TLPLevels {
		for _, b := range config.TLPLevels {
			v := eval(surf([]int{a, b}))
			if v > best {
				best = v
				bestC = []int{a, b}
			}
		}
	}
	return bestC, best
}

func TestPBSWSFindsNearOptimalCombo(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjWS)
	d := drive(m, surf, 80, nil)
	if m.Phase() != "stable" {
		t.Fatalf("search not finished: phase %s", m.Phase())
	}
	got := metrics.EBWS(surf(clamped(d.TLP)))
	_, best := bestOnSurface(surf, metrics.EBWS)
	if got < 0.93*best {
		t.Fatalf("PBS-WS found %v with EB-WS %.3f, below 93%% of optimum %.3f",
			d.TLP, got, best)
	}
}

func TestPBSPinsCriticalAppInflection(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjWS)
	d := drive(m, surf, 80, nil)
	// App 0's cliff at TLP 4 dominates the EB-WS drop; PBS must hold
	// app 0 at or below its inflection.
	if c := config.ClampToLevel(d.TLP[0]); c > 4 {
		t.Fatalf("critical app pinned at %d, beyond its inflection 4", c)
	}
}

func TestPBSDecisionsAlwaysValidLevels(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjWS)
	d := m.Initial(2)
	for w := 0; w < 60; w++ {
		for _, v := range d.TLP {
			if config.LevelIndex(config.ClampToLevel(v)) < 0 || v < 1 || v > config.MaxTLP {
				t.Fatalf("window %d: invalid TLP %d", w, v)
			}
		}
		ebs := surf(clamped(d.TLP))
		d = m.OnSample(tlp.Sample{Apps: []tlp.AppSample{
			{App: 0, TLP: d.TLP[0], EB: ebs[0]},
			{App: 1, TLP: d.TLP[1], EB: ebs[1]},
		}})
	}
}

func TestPBSRestartsOnKernelRelaunch(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjWS)
	drive(m, surf, 120, map[int]bool{100: true})
	if m.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", m.Restarts())
	}
	if m.Searches() < 1 {
		t.Fatalf("searches = %d", m.Searches())
	}
}

func TestPBSRelaunchDuringSearchIgnored(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjWS)
	// Relaunch at window 2, long before the search finishes: must not
	// reset (the paper restarts PBS per relaunch once running).
	drive(m, surf, 80, map[int]bool{2: true})
	if m.Restarts() != 0 {
		t.Fatalf("restart counted during initial search")
	}
	if m.Searches() != 1 {
		t.Fatalf("searches = %d, want 1", m.Searches())
	}
}

func TestPBSDriftRestartsSearch(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjWS)
	m.DriftThreshold = 0.5
	m.DriftWindows = 3
	// Let the first search complete on the normal surface.
	d := drive(m, surf, 80, nil)
	if m.Phase() != "stable" {
		t.Fatalf("phase %s", m.Phase())
	}
	if m.Drifts() != 0 {
		t.Fatal("spurious drift during steady state")
	}
	// The interference pattern changes drastically: the measured metric
	// collapses. PBS should notice and re-search.
	collapsed := func(tlps []int) []float64 {
		ebs := surf(tlps)
		return []float64{ebs[0] * 0.1, ebs[1] * 0.1}
	}
	d = m.Initial(2) // fresh run to keep the harness simple
	m.DriftThreshold = 0.5
	m.DriftWindows = 3
	d = drive(m, surf, 80, nil)
	for w := 0; w < 10; w++ {
		ebs := collapsed(clamped(d.TLP))
		d = m.OnSample(tlp.Sample{Apps: []tlp.AppSample{
			{App: 0, TLP: d.TLP[0], EB: ebs[0]},
			{App: 1, TLP: d.TLP[1], EB: ebs[1]},
		}})
	}
	if m.Drifts() != 1 {
		t.Fatalf("drifts = %d, want 1", m.Drifts())
	}
	if m.Phase() == "stable" {
		t.Fatal("drift did not restart the search")
	}
}

func TestPBSNoDriftByDefault(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjWS)
	d := drive(m, surf, 80, nil)
	// Feed collapsed samples: without DriftThreshold the combination must
	// hold (paper behaviour: restart only on kernel relaunch).
	for w := 0; w < 10; w++ {
		d = m.OnSample(tlp.Sample{Apps: []tlp.AppSample{
			{App: 0, TLP: d.TLP[0], EB: 0.001},
			{App: 1, TLP: d.TLP[1], EB: 0.001},
		}})
	}
	if m.Phase() != "stable" || m.Drifts() != 0 {
		t.Fatal("default PBS re-searched without a relaunch")
	}
}

func TestPBSSamplingTableBounded(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjWS)
	drive(m, surf, 200, map[int]bool{60: true, 120: true, 180: true})
	if n := len(m.Table()); n > 16 {
		t.Fatalf("sampling table grew to %d entries (hardware holds 16)", n)
	}
	if len(m.Table()) == 0 {
		t.Fatal("sampling table empty")
	}
}

func TestPBSFISampledScaling(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjFI)
	if m.Scaling != SampledScale {
		t.Fatal("PBS-FI should default to sampled scaling")
	}
	d := drive(m, surf, 100, nil)
	if m.Phase() != "stable" {
		t.Fatalf("phase %s", m.Phase())
	}
	// The final combo should be substantially fairer than ++maxTLP.
	fiOf := func(tlps []int) float64 {
		ebs := surf(tlps)
		return metrics.EBFI(ebs, nil)
	}
	if fiOf(clamped(d.TLP)) < fiOf([]int{24, 24}) {
		t.Fatalf("PBS-FI combo %v less balanced than ++maxTLP", d.TLP)
	}
}

func TestPBSFIGroupScaling(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjFI)
	m.Scaling = GroupScale
	m.GroupValues = []float64{1.0, 0.8}
	d := drive(m, surf, 100, nil)
	if m.Phase() != "stable" {
		t.Fatalf("phase %s", m.Phase())
	}
	_ = d
}

func TestPBSHSStabilizes(t *testing.T) {
	surf := patterned(t)
	m := NewPBS(metrics.ObjHS)
	d := drive(m, surf, 120, nil)
	if m.Phase() != "stable" {
		t.Fatalf("phase %s", m.Phase())
	}
	got := metrics.EBHS(surf(clamped(d.TLP)), m.Table()[0].EB) // any positive scale
	if got <= 0 {
		t.Fatal("degenerate HS outcome")
	}
}

func TestPBSNames(t *testing.T) {
	if NewPBS(metrics.ObjWS).Name() != "PBS-WS" {
		t.Error("WS name")
	}
	if NewPBS(metrics.ObjFI).Name() != "PBS-FI(sampled)" {
		t.Errorf("FI name = %s", NewPBS(metrics.ObjFI).Name())
	}
}

func TestDropAndArgmax(t *testing.T) {
	drop, am := dropAndArgmax([]float64{0.2, 0.8, 1.0, 0.3, 0.25})
	if am != 2 {
		t.Fatalf("argmax = %d", am)
	}
	if drop < 0.74 || drop > 0.76 {
		t.Fatalf("drop = %v", drop)
	}
	// Monotone rising curve: no drop.
	drop, am = dropAndArgmax([]float64{0.1, 0.2, 0.3})
	if drop != 0 || am != 2 {
		t.Fatalf("rising curve: drop=%v argmax=%d", drop, am)
	}
	if d, a := dropAndArgmax(nil); d != 0 || a != 0 {
		t.Fatal("empty curve")
	}
}

func TestCapByCollapse(t *testing.T) {
	levels := []int{1, 2, 4, 8, 16, 24}
	// Collapse at the tail: cap excludes 16, 24.
	cap1 := capByCollapse([]float64{0.5, 0.9, 1.0, 0.8, 0.3, 0.2}, levels)
	if cap1 != 8 {
		t.Fatalf("cap = %d, want 8", cap1)
	}
	// Flat curve: no cap.
	if c := capByCollapse([]float64{0.5, 0.52, 0.48, 0.5, 0.51, 0.49}, levels); c != 24 {
		t.Fatalf("flat curve capped at %d", c)
	}
	// Rising curve: no cap.
	if c := capByCollapse([]float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}, levels); c != 24 {
		t.Fatalf("rising curve capped at %d", c)
	}
	if c := capByCollapse(nil, levels); c != 24 {
		t.Fatal("empty curve")
	}
}

func TestChooseByDiffPrefersCrossing(t *testing.T) {
	// A sign crossing between indices 2 and 3; index 3 has the smaller
	// magnitude.
	diffs := []float64{-0.9, -0.5, -0.2, 0.1, 0.6}
	sums := []float64{1, 1, 1, 1, 1}
	if got := chooseByDiff(diffs, sums); got != 3 {
		t.Fatalf("chose %d, want 3", got)
	}
	// No crossing: smallest |diff| among healthy entries. Index 0 has the
	// smallest diff but is starved; index 2 is the healthy minimum.
	diffs = []float64{0.01, 0.5, 0.2, 0.4}
	sums = []float64{0.05, 1.0, 0.9, 1.0}
	if got := chooseByDiff(diffs, sums); got != 2 {
		t.Fatalf("chose %d, want 2 (healthy minimum)", got)
	}
	// Everything unhealthy: global argmin.
	diffs = []float64{0.3, 0.1, 0.2}
	sums = []float64{0, 0, 0}
	if got := chooseByDiff(diffs, sums); got != 1 {
		t.Fatalf("degenerate chose %d, want 1", got)
	}
}

func TestCurveRange(t *testing.T) {
	if r := curveRange([]float64{-0.5, 0.2, 0.1}); r != 0.7 {
		t.Fatalf("range = %v", r)
	}
	if curveRange(nil) != 0 {
		t.Fatal("empty range")
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel(2, 16, 8)
	if c.PerCoreRegisterBits != 64 {
		t.Errorf("per-core bits = %d", c.PerCoreRegisterBits)
	}
	if c.PerPartitionRegisterBits != 2*(3*32+50) {
		t.Errorf("per-partition bits = %d", c.PerPartitionRegisterBits)
	}
	if c.TableEntries != 16 {
		t.Errorf("table entries = %d", c.TableEntries)
	}
	if c.TotalStorageBits <= 0 || c.String() == "" {
		t.Error("degenerate cost model")
	}
}
