// Package workload defines the multi-application workloads evaluated in
// the paper: the ten representative two-application pairs whose panels
// appear in Figs. 4, 9, and 10, the full 25-pair evaluation set, and the
// three-application extension of Section VI-D.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"ebm/internal/kernel"
)

// Workload is a named set of co-scheduled applications.
type Workload struct {
	Name string
	Apps []kernel.Params
}

// Names returns the application names in order.
func (w Workload) Names() []string {
	out := make([]string, len(w.Apps))
	for i, a := range w.Apps {
		out[i] = a.Name
	}
	return out
}

// make builds a workload from application names found in the kernel suite.
func mk(names ...string) (Workload, error) {
	w := Workload{Name: strings.Join(names, "_")}
	for _, n := range names {
		p, ok := kernel.ByName(n)
		if !ok {
			return Workload{}, fmt.Errorf("workload: unknown application %q", n)
		}
		w.Apps = append(w.Apps, p)
	}
	return w, nil
}

// MustMake builds a workload from suite application names, panicking on an
// unknown name (construction-time configuration error).
func MustMake(names ...string) Workload {
	w, err := mk(names...)
	if err != nil {
		panic(err)
	}
	return w
}

// representativePairs are the ten workloads the paper's per-workload
// panels show (Figs. 4, 9, 10).
var representativePairs = [][2]string{
	{"DS", "TRD"},
	{"BFS", "FFT"},
	{"BLK", "BFS"},
	{"BLK", "TRD"},
	{"FFT", "TRD"},
	{"FWT", "TRD"},
	{"JPEG", "CFD"},
	{"JPEG", "LIB"},
	{"JPEG", "LUH"},
	{"SCP", "TRD"},
}

// extraPairs complete the 25-workload evaluation set, chosen (like the
// paper's) to mix applications across the EB groups so that shared-cache
// and bandwidth interference actually manifests.
var extraPairs = [][2]string{
	{"BFS", "TRD"},
	{"BFS", "GUPS"},
	{"HS", "TRD"},
	{"HS", "BLK"},
	{"CONS", "TRD"},
	{"CONS", "SCAN"},
	{"CFD", "TRD"},
	{"CFD", "BLK"},
	{"SC", "RED"},
	{"SC", "BLK"},
	{"RAY", "TRD"},
	{"RAY", "SCAN"},
	{"LPS", "TRD"},
	{"SRAD", "BFS"},
	{"GUPS", "TRD"},
}

// Representative returns the ten panel workloads.
func Representative() []Workload {
	out := make([]Workload, len(representativePairs))
	for i, p := range representativePairs {
		out[i] = MustMake(p[0], p[1])
	}
	return out
}

// Evaluated returns the full 25-workload two-application set.
func Evaluated() []Workload {
	out := Representative()
	for _, p := range extraPairs {
		out = append(out, MustMake(p[0], p[1]))
	}
	return out
}

// ThreeApp returns the three-application workloads of the Section VI-D
// scalability study.
func ThreeApp() []Workload {
	return []Workload{
		MustMake("BLK", "BFS", "TRD"),
		MustMake("JPEG", "CFD", "TRD"),
		MustMake("BFS", "FFT", "SCAN"),
		MustMake("HS", "CONS", "TRD"),
	}
}

// ByName finds an evaluated workload (two- or three-app) by its
// underscore-joined name, e.g. "BLK_TRD".
func ByName(name string) (Workload, bool) {
	for _, w := range append(Evaluated(), ThreeApp()...) {
		if w.Name == name {
			return w, true
		}
	}
	// Fall back to constructing from arbitrary suite apps.
	parts := strings.Split(name, "_")
	if len(parts) >= 2 {
		if w, err := mk(parts...); err == nil {
			return w, true
		}
	}
	return Workload{}, false
}

// UniqueApps returns the sorted set of application names appearing in the
// given workloads.
func UniqueApps(ws []Workload) []string {
	set := map[string]bool{}
	for _, w := range ws {
		for _, a := range w.Apps {
			set[a.Name] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AllPairs enumerates every unordered pair of distinct suite applications
// (Fig. 5 is computed across all pairs).
func AllPairs() []Workload {
	names := kernel.Names()
	var out []Workload
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			out = append(out, MustMake(names[i], names[j]))
		}
	}
	return out
}
