package workload

import (
	"testing"

	"ebm/internal/kernel"
)

func TestRepresentativeMatchesPaperPanels(t *testing.T) {
	want := []string{
		"DS_TRD", "BFS_FFT", "BLK_BFS", "BLK_TRD", "FFT_TRD",
		"FWT_TRD", "JPEG_CFD", "JPEG_LIB", "JPEG_LUH", "SCP_TRD",
	}
	got := Representative()
	if len(got) != len(want) {
		t.Fatalf("%d representative workloads, want %d", len(got), len(want))
	}
	for i, w := range got {
		if w.Name != want[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Name, want[i])
		}
		if len(w.Apps) != 2 {
			t.Errorf("%s has %d apps", w.Name, len(w.Apps))
		}
	}
}

func TestEvaluatedSetSize(t *testing.T) {
	ws := Evaluated()
	if len(ws) != 25 {
		t.Fatalf("%d evaluated workloads, want 25 (paper)", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.Apps[0].Name == w.Apps[1].Name {
			t.Fatalf("self-paired workload %s", w.Name)
		}
	}
}

func TestThreeApp(t *testing.T) {
	for _, w := range ThreeApp() {
		if len(w.Apps) != 3 {
			t.Fatalf("%s has %d apps", w.Name, len(w.Apps))
		}
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("BLK_TRD")
	if !ok || w.Apps[0].Name != "BLK" || w.Apps[1].Name != "TRD" {
		t.Fatal("ByName evaluated workload failed")
	}
	// Arbitrary suite pairs are constructible even if not in the set.
	w2, ok := ByName("GUPS_LUD")
	if !ok || len(w2.Apps) != 2 {
		t.Fatal("arbitrary pair not constructed")
	}
	// Three-app names resolve too.
	w3, ok := ByName("BLK_BFS_TRD")
	if !ok || len(w3.Apps) != 3 {
		t.Fatal("three-app name not constructed")
	}
	if _, ok := ByName("NOPE_ALSO"); ok {
		t.Fatal("unknown apps accepted")
	}
	if _, ok := ByName("JUSTONE"); ok {
		t.Fatal("single name accepted")
	}
}

func TestMustMakePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMake accepted an unknown app")
		}
	}()
	MustMake("NOPE", "TRD")
}

func TestNames(t *testing.T) {
	w := MustMake("BLK", "TRD")
	n := w.Names()
	if n[0] != "BLK" || n[1] != "TRD" {
		t.Fatalf("Names = %v", n)
	}
}

func TestUniqueApps(t *testing.T) {
	apps := UniqueApps(Evaluated())
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a] {
			t.Fatalf("duplicate %s", a)
		}
		seen[a] = true
		if _, ok := kernel.ByName(a); !ok {
			t.Fatalf("unknown app %s in workloads", a)
		}
	}
	for i := 1; i < len(apps); i++ {
		if apps[i-1] >= apps[i] {
			t.Fatal("UniqueApps not sorted")
		}
	}
	if len(apps) < 10 {
		t.Fatalf("evaluation set spans only %d apps", len(apps))
	}
}

func TestAllPairsCount(t *testing.T) {
	n := len(kernel.Names())
	want := n * (n - 1) / 2
	if got := len(AllPairs()); got != want {
		t.Fatalf("AllPairs = %d, want %d", got, want)
	}
}

func TestEvaluatedWorkloadsUseSuiteApps(t *testing.T) {
	for _, w := range append(Evaluated(), ThreeApp()...) {
		for _, a := range w.Apps {
			if _, ok := kernel.ByName(a.Name); !ok {
				t.Errorf("workload %s references unknown app %s", w.Name, a.Name)
			}
			if err := a.Validate(); err != nil {
				t.Errorf("workload %s app %s invalid: %v", w.Name, a.Name, err)
			}
		}
	}
}
