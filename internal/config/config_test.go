package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestTLPLevelsSortedAndBounded(t *testing.T) {
	for i := 1; i < len(TLPLevels); i++ {
		if TLPLevels[i] <= TLPLevels[i-1] {
			t.Fatalf("TLPLevels not strictly increasing at %d: %v", i, TLPLevels)
		}
	}
	if TLPLevels[len(TLPLevels)-1] != MaxTLP {
		t.Fatalf("last level %d != MaxTLP %d", TLPLevels[len(TLPLevels)-1], MaxTLP)
	}
	if got := Default().MaxTLPPerScheduler(); got != MaxTLP {
		t.Fatalf("MaxTLPPerScheduler = %d, want %d", got, MaxTLP)
	}
}

func TestLevelIndex(t *testing.T) {
	for i, l := range TLPLevels {
		if got := LevelIndex(l); got != i {
			t.Errorf("LevelIndex(%d) = %d, want %d", l, got, i)
		}
	}
	for _, bad := range []int{0, 3, 5, 7, 25, -1} {
		if got := LevelIndex(bad); got != -1 {
			t.Errorf("LevelIndex(%d) = %d, want -1", bad, got)
		}
	}
}

func TestClampToLevel(t *testing.T) {
	cases := map[int]int{
		-5: 1, 0: 1, 1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 6: 6, 7: 6,
		8: 8, 11: 8, 12: 12, 15: 12, 16: 16, 23: 16, 24: 24, 100: 24,
	}
	for in, want := range cases {
		if got := ClampToLevel(in); got != want {
			t.Errorf("ClampToLevel(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestClampToLevelAlwaysValid(t *testing.T) {
	f := func(x int16) bool {
		return LevelIndex(ClampToLevel(int(x))) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheGeometry(t *testing.T) {
	good := CacheGeometry{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 128}
	if err := good.Validate(); err != nil {
		t.Fatalf("good geometry rejected: %v", err)
	}
	if got := good.Sets(); got != 32 {
		t.Fatalf("Sets() = %d, want 32", got)
	}
	bad := []CacheGeometry{
		{SizeBytes: 0, Ways: 4, LineBytes: 128},
		{SizeBytes: 16 * 1024, Ways: 0, LineBytes: 128},
		{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 0},
		{SizeBytes: 100, Ways: 4, LineBytes: 128},      // not divisible
		{SizeBytes: 3 * 1024, Ways: 2, LineBytes: 128}, // 12 sets, not pow2
		{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 96}, // line not pow2
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

func TestGPUValidateRejectsBroken(t *testing.T) {
	mutations := []func(*GPU){
		func(g *GPU) { g.NumCores = 0 },
		func(g *GPU) { g.SchedulersPerCore = 0 },
		func(g *GPU) { g.MaxWarpsPerCore = 47 }, // not divisible by 2 schedulers
		func(g *GPU) { g.L1.Ways = 0 },
		func(g *GPU) { g.L2.LineBytes = 64 }, // mismatched line sizes
		func(g *GPU) { g.NumMemPartitions = 3 },
		func(g *GPU) { g.BanksPerMC = 12 },
		func(g *GPU) { g.BankGroupsPerMC = 3 },
		func(g *GPU) { g.AddrInterleave = 100 },
		func(g *GPU) { g.RowBytes = 300 },
		func(g *GPU) { g.MemClockMHz = 0 },
	}
	for i, mut := range mutations {
		g := Default()
		mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, g)
		}
	}
}

func TestPartitionOfInterleave(t *testing.T) {
	g := Default()
	// Consecutive 256-byte chunks rotate across partitions.
	for chunk := 0; chunk < 4*g.NumMemPartitions; chunk++ {
		addr := uint64(chunk * g.AddrInterleave)
		want := chunk % g.NumMemPartitions
		if got := g.PartitionOf(addr); got != want {
			t.Fatalf("PartitionOf(%#x) = %d, want %d", addr, got, want)
		}
		// Every byte in the chunk maps to the same partition.
		if got := g.PartitionOf(addr + uint64(g.AddrInterleave-1)); got != want {
			t.Fatalf("chunk-end PartitionOf mismatch at %#x", addr)
		}
	}
}

func TestPartitionOfCoversAll(t *testing.T) {
	g := Default()
	seen := make(map[int]bool)
	f := func(addr uint64) bool {
		p := g.PartitionOf(addr)
		seen[p] = true
		return p >= 0 && p < g.NumMemPartitions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != g.NumMemPartitions {
		t.Fatalf("random addresses touched %d partitions, want %d", len(seen), g.NumMemPartitions)
	}
}

func TestPeakBandwidth(t *testing.T) {
	g := Default()
	want := float64(g.NumMemPartitions * g.BusWidthBytes)
	if got := g.PeakBandwidthBytesPerMemCycle(); got != want {
		t.Fatalf("peak = %v, want %v", got, want)
	}
	if r := g.MemCyclesPerCoreCycle(); r <= 0 || r >= 1 {
		t.Fatalf("mem/core clock ratio %v outside (0,1) for the default machine", r)
	}
}

func TestStringMentionsKeyFields(t *testing.T) {
	s := Default().String()
	for _, want := range []string{"cores=16", "simt=32", "warps/core=48"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
