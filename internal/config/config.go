// Package config describes the simulated GPU machine (the paper's Table I)
// and the TLP configuration space (the paper's Table II).
//
// Where the source text's OCR dropped digits, canonical GPGPU-Sim v3.x
// values for the cited configuration are used; see DESIGN.md for the full
// substitution list.
package config

import "fmt"

// TLPLevels are the per-application TLP (active warps per scheduler) values
// the schemes may choose from. Eight levels per application yield the
// paper's 64 two-application combinations. The maximum is 24 because a core
// holds 48 warps shared by two warp schedulers.
var TLPLevels = []int{1, 2, 4, 6, 8, 12, 16, 24}

// MaxTLP is the largest selectable TLP level.
const MaxTLP = 24

// LevelIndex returns the index of tlp in TLPLevels, or -1 if tlp is not a
// valid level.
func LevelIndex(tlp int) int {
	for i, v := range TLPLevels {
		if v == tlp {
			return i
		}
	}
	return -1
}

// ClampToLevel returns the largest configured TLP level that is <= tlp
// (at minimum TLPLevels[0]).
func ClampToLevel(tlp int) int {
	best := TLPLevels[0]
	for _, v := range TLPLevels {
		if v <= tlp {
			best = v
		}
	}
	return best
}

// DRAMTiming holds GDDR5 bank timing constraints in memory-clock cycles
// (Hynix GDDR5 datasheet values as configured in GPGPU-Sim).
type DRAMTiming struct {
	TCL  int // CAS latency: column command to data
	TRP  int // row precharge
	TRAS int // row active time (activate to precharge)
	TRCD int // row to column delay (activate to column command)
	TRRD int // activate to activate, different banks
	TCCD int // column command to column command (burst gap)
	TWR  int // write recovery before precharge
	BL   int // burst length in memory cycles on the data bus

	// Refresh: every TREFI memory cycles all banks of a partition are
	// blocked for TRFC cycles. TREFI == 0 disables refresh modeling (the
	// default: the paper's bandwidth accounting does not separate refresh
	// overhead; enable it for the fidelity ablation).
	TREFI int
	TRFC  int
}

// DefaultDRAMTiming returns the Table I Hynix GDDR5 timing set.
func DefaultDRAMTiming() DRAMTiming {
	return DRAMTiming{
		TCL:  12,
		TRP:  12,
		TRAS: 28,
		TRCD: 12,
		TRRD: 6,
		TCCD: 2,
		TWR:  12,
		BL:   4,
	}
}

// CacheGeometry describes one set-associative cache.
type CacheGeometry struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeometry) Sets() int {
	return g.SizeBytes / (g.Ways * g.LineBytes)
}

// Validate reports an error if the geometry is not a power-of-two
// organization usable by the cache model.
func (g CacheGeometry) Validate() error {
	if g.SizeBytes <= 0 || g.Ways <= 0 || g.LineBytes <= 0 {
		return fmt.Errorf("config: non-positive cache geometry %+v", g)
	}
	if g.SizeBytes%(g.Ways*g.LineBytes) != 0 {
		return fmt.Errorf("config: cache size %d not divisible by way*line %d",
			g.SizeBytes, g.Ways*g.LineBytes)
	}
	sets := g.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("config: cache sets %d not a power of two", sets)
	}
	if g.LineBytes&(g.LineBytes-1) != 0 {
		return fmt.Errorf("config: line size %d not a power of two", g.LineBytes)
	}
	return nil
}

// GPU is the full machine description (the paper's Table I).
type GPU struct {
	// Cores and threading.
	NumCores          int // streaming multiprocessors / compute units
	SIMTWidth         int // threads per warp
	MaxWarpsPerCore   int // hardware warp contexts per core
	SchedulersPerCore int // warp schedulers (issue slots) per core

	// Clocks in MHz. The simulator advances the memory clock at
	// MemClockMHz/CoreClockMHz of the core rate.
	CoreClockMHz int
	IcntClockMHz int
	MemClockMHz  int

	// Caches.
	L1 CacheGeometry // per-core private L1 data cache
	L2 CacheGeometry // per memory partition slice

	// L1 hit latency and L2 hit latency in core cycles.
	L1HitLatency int
	L2HitLatency int

	// MSHRs per L1 cache: outstanding misses per core.
	L1MSHRs int

	// MSHRs per L2 slice: outstanding DRAM reads per memory partition.
	// Zero selects the default of 64 (the seed simulator's fixed budget).
	L2MSHRs int

	// Interconnect: crossbar latency (core cycles) per direction and
	// flit (packet) size in bytes.
	IcntLatency  int
	IcntFlitSize int

	// Memory system.
	NumMemPartitions int // memory controllers, each with an L2 slice
	BanksPerMC       int
	BankGroupsPerMC  int
	BusWidthBytes    int // data bus width per MC per memory cycle
	AddrInterleave   int // global address space interleave chunk in bytes
	Timing           DRAMTiming

	// DRAM row size in bytes (row-buffer locality granularity).
	RowBytes int
}

// Default returns the baseline Table I configuration scaled per DESIGN.md.
func Default() GPU {
	return GPU{
		NumCores:          16,
		SIMTWidth:         32,
		MaxWarpsPerCore:   48,
		SchedulersPerCore: 2,
		CoreClockMHz:      1400,
		IcntClockMHz:      1400,
		MemClockMHz:       924,
		L1: CacheGeometry{
			SizeBytes: 16 * 1024,
			Ways:      4,
			LineBytes: 128,
		},
		L2: CacheGeometry{
			SizeBytes: 256 * 1024,
			Ways:      16,
			LineBytes: 128,
		},
		L1HitLatency:     28,
		L2HitLatency:     40,
		L1MSHRs:          64,
		L2MSHRs:          64,
		IcntLatency:      8,
		IcntFlitSize:     64,
		NumMemPartitions: 8,
		BanksPerMC:       16,
		BankGroupsPerMC:  4,
		BusWidthBytes:    32,
		AddrInterleave:   256,
		Timing:           DefaultDRAMTiming(),
		RowBytes:         2 * 1024,
	}
}

// Validate checks internal consistency of the configuration.
func (g GPU) Validate() error {
	if g.NumCores <= 0 {
		return fmt.Errorf("config: NumCores must be positive, got %d", g.NumCores)
	}
	if g.SchedulersPerCore <= 0 {
		return fmt.Errorf("config: SchedulersPerCore must be positive, got %d", g.SchedulersPerCore)
	}
	if g.MaxWarpsPerCore%g.SchedulersPerCore != 0 {
		return fmt.Errorf("config: MaxWarpsPerCore %d not divisible by schedulers %d",
			g.MaxWarpsPerCore, g.SchedulersPerCore)
	}
	if err := g.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := g.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if g.L1.LineBytes != g.L2.LineBytes {
		return fmt.Errorf("config: L1 line %d != L2 line %d", g.L1.LineBytes, g.L2.LineBytes)
	}
	if g.NumMemPartitions <= 0 || g.NumMemPartitions&(g.NumMemPartitions-1) != 0 {
		return fmt.Errorf("config: NumMemPartitions %d must be a positive power of two", g.NumMemPartitions)
	}
	if g.BanksPerMC <= 0 || g.BanksPerMC&(g.BanksPerMC-1) != 0 {
		return fmt.Errorf("config: BanksPerMC %d must be a positive power of two", g.BanksPerMC)
	}
	if g.BankGroupsPerMC <= 0 || g.BanksPerMC%g.BankGroupsPerMC != 0 {
		return fmt.Errorf("config: BanksPerMC %d not divisible by bank groups %d",
			g.BanksPerMC, g.BankGroupsPerMC)
	}
	if g.AddrInterleave < g.L2.LineBytes || g.AddrInterleave%g.L2.LineBytes != 0 {
		return fmt.Errorf("config: interleave %d must be a multiple of the line size %d",
			g.AddrInterleave, g.L2.LineBytes)
	}
	if g.RowBytes <= 0 || g.RowBytes%g.AddrInterleave != 0 {
		return fmt.Errorf("config: RowBytes %d must be a multiple of interleave %d",
			g.RowBytes, g.AddrInterleave)
	}
	if g.MemClockMHz <= 0 || g.CoreClockMHz <= 0 {
		return fmt.Errorf("config: clocks must be positive")
	}
	return nil
}

// MaxTLPPerScheduler is the largest TLP value selectable on this machine:
// hardware warps divided among the schedulers.
func (g GPU) MaxTLPPerScheduler() int {
	return g.MaxWarpsPerCore / g.SchedulersPerCore
}

// PeakBandwidthBytesPerMemCycle is the aggregate DRAM data-bus capacity per
// memory-clock cycle across all partitions. GDDR5 is DDR on the data bus;
// the model folds the double rate into BusWidthBytes per cycle.
func (g GPU) PeakBandwidthBytesPerMemCycle() float64 {
	return float64(g.NumMemPartitions * g.BusWidthBytes)
}

// MemCyclesPerCoreCycle is the memory-clock advance per core-clock cycle.
func (g GPU) MemCyclesPerCoreCycle() float64 {
	return float64(g.MemClockMHz) / float64(g.CoreClockMHz)
}

// PartitionOf maps a byte address to its memory partition using the Table I
// 256-byte chunk interleave.
func (g GPU) PartitionOf(addr uint64) int {
	return int((addr / uint64(g.AddrInterleave)) % uint64(g.NumMemPartitions))
}

// String summarizes the configuration as a Table-I style block.
func (g GPU) String() string {
	return fmt.Sprintf(
		"GPU{cores=%d simt=%d warps/core=%d scheds/core=%d clocks=%d/%d/%dMHz "+
			"L1=%dKB/%dw L2=%dx%dKB/%dw line=%dB MCs=%d banks=%d groups=%d row=%dB}",
		g.NumCores, g.SIMTWidth, g.MaxWarpsPerCore, g.SchedulersPerCore,
		g.CoreClockMHz, g.IcntClockMHz, g.MemClockMHz,
		g.L1.SizeBytes/1024, g.L1.Ways,
		g.NumMemPartitions, g.L2.SizeBytes/1024, g.L2.Ways, g.L2.LineBytes,
		g.NumMemPartitions, g.BanksPerMC, g.BankGroupsPerMC, g.RowBytes)
}
