package ebm_test

// Provenance integration tests: drive real grid builds and checkpoint
// forks with the span tracer and the run ledger attached, and prove the
// observability contract end to end — tracing and provenance never
// perturb results (bit-identity against an uninstrumented build), a warm
// rerun's ledger reads 100% cached, and a forked run's record carries
// its restore depth.

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ebm/internal/ckpt"
	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
)

// ledgeredCache opens a result cache with a fresh provenance ledger.
func ledgeredCache(t *testing.T, cacheDir, ledgerPath string) *simcache.Cache {
	t.Helper()
	cache, err := simcache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := obs.OpenLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cache.SetLedger(l)
	return cache
}

// TestTracedSweepBitIdenticalAndWarmLedgerAllCached is the tentpole's
// acceptance path: a grid build with spans and provenance fully enabled
// is bit-identical to an uninstrumented build, and the warm rerun's
// ledger reports zero cold and zero forked runs.
func TestTracedSweepBitIdenticalAndWarmLedgerAllCached(t *testing.T) {
	apps := chaosApps(t)
	dir := t.TempDir()

	// Reference: no cache, no tracer, no ledger.
	refPool := runner.New(4)
	ref, err := search.BuildGrid(context.Background(), apps, chaosGridOpts(nil, refPool, nil))
	refPool.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Cold pass with everything on.
	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)
	cache1 := ledgeredCache(t, dir, filepath.Join(t.TempDir(), "cold.jsonl"))
	pool1 := runner.New(4)
	cold, err := search.BuildGrid(ctx, apps, chaosGridOpts(cache1, pool1, nil))
	pool1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Results, ref.Results) {
		t.Fatal("tracing+ledger perturbed the grid results")
	}

	// The span tree covers every layer of the build.
	names := map[string]bool{}
	for _, s := range tracer.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"grid-build", "cell", "run", "cache.get", "execute", "cache.put", "pool.do"} {
		if !names[want] {
			t.Errorf("no %q span recorded (got %v)", want, names)
		}
	}
	var b strings.Builder
	if err := obs.WriteSpanTrace(&b, tracer); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("span trace is not valid trace-event JSON: %v", err)
	}

	recs, skipped, err := obs.ReadLedger(cache1.Ledger().Path())
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != len(cold.Results) {
		t.Fatalf("cold ledger: %d records (%d skipped), want %d", len(recs), skipped, len(cold.Results))
	}
	for _, r := range recs {
		if r.Outcome != obs.OutcomeCold {
			t.Fatalf("cold pass recorded outcome %q: %+v", r.Outcome, r)
		}
	}

	// Warm pass: fresh ledger on the same cache directory. Every record
	// must read "cached" and the -explain summary must say so.
	warmLedger := filepath.Join(t.TempDir(), "warm.jsonl")
	cache2 := ledgeredCache(t, dir, warmLedger)
	pool2 := runner.New(4)
	warm, err := search.BuildGrid(context.Background(), apps, chaosGridOpts(cache2, pool2, nil))
	pool2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Results, ref.Results) {
		t.Fatal("warm replay diverged from the reference grid")
	}
	wrecs, wskipped, err := obs.ReadLedger(warmLedger)
	if err != nil {
		t.Fatal(err)
	}
	if wskipped != 0 || len(wrecs) != len(warm.Results) {
		t.Fatalf("warm ledger: %d records (%d skipped), want %d", len(wrecs), wskipped, len(warm.Results))
	}
	for _, r := range wrecs {
		if r.Outcome != obs.OutcomeCached {
			t.Fatalf("warm pass recorded outcome %q: %+v", r.Outcome, r)
		}
	}
	sum := obs.SummarizeLedger(wrecs, 3)
	if sum.Cold != 0 || sum.Forked != 0 || sum.Cached != len(wrecs) {
		t.Fatalf("warm summary = %+v", sum)
	}
	var txt strings.Builder
	sum.WriteText(&txt)
	if !strings.Contains(txt.String(), "0 cold / 0 forked") {
		t.Fatalf("-explain text missing the warm verdict:\n%s", txt.String())
	}
}

// TestForkedRunRecordsRestoreDepth pins the forked@depth provenance: a
// longer-horizon rerun of a checkpointed prefix must append a "forked"
// record carrying the restore window and the checkpoint schema, while
// still matching the from-zero simulation bit for bit.
func TestForkedRunRecordsRestoreDepth(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	app, ok := kernel.ByName("BLK")
	if !ok {
		t.Fatal("no BLK")
	}
	mkSpec := func(total uint64) spec.RunSpec {
		return spec.RunSpec{
			Config:       cfg,
			Apps:         []kernel.Params{app},
			Scheme:       spec.Static([]int{4}, nil),
			TotalCycles:  total,
			WarmupCycles: 2_000,
		}
	}

	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.SetEvery(1) // snapshot every window boundary

	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	cache := ledgeredCache(t, filepath.Join(dir, "simcache"), ledgerPath)

	// Short run: 2 default windows, persists prefix snapshots.
	short := mkSpec(2 * sim.DefaultWindowCycles)
	if _, err := simcache.RunCached(context.Background(), cache, nil, 0, short, ckpt.Runner(store, short)); err != nil {
		t.Fatal(err)
	}
	// Long run: a different key (3 windows), so the cache misses and the
	// execution forks from the deepest shared-prefix snapshot.
	long := mkSpec(3 * sim.DefaultWindowCycles)
	forked, err := simcache.RunCached(context.Background(), cache, nil, 0, long, ckpt.Runner(store, long))
	if err != nil {
		t.Fatal(err)
	}
	if store.Stats().Forks == 0 {
		t.Fatal("the long run never forked; the provenance assertion below would be vacuous")
	}
	fromZero, err := sim.Execute(context.Background(), long)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forked, fromZero) {
		t.Fatal("forked run diverged from the from-zero simulation")
	}

	recs, skipped, err := obs.ReadLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != 2 {
		t.Fatalf("ledger: %d records (%d skipped), want 2", len(recs), skipped)
	}
	if recs[0].Outcome != obs.OutcomeCold {
		t.Fatalf("short run outcome = %q, want cold", recs[0].Outcome)
	}
	fk := recs[1]
	if fk.Outcome != obs.OutcomeForked || fk.ForkWindow == 0 {
		t.Fatalf("long run record = %+v, want forked@>0", fk)
	}
	if fk.CkptSchema != ckpt.SchemaVersion {
		t.Fatalf("forked record ckpt schema = %d, want %d", fk.CkptSchema, ckpt.SchemaVersion)
	}
	if fk.OutcomeString() != "forked@2" {
		t.Fatalf("OutcomeString = %q, want forked@2 (restore at the deepest shared window)", fk.OutcomeString())
	}
}
