package ebm_test

import (
	"testing"

	"ebm"
)

func small() ebm.Config {
	cfg := ebm.DefaultConfig()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	return cfg
}

func TestFacadeBasics(t *testing.T) {
	cfg := ebm.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ebm.Applications()) != 26 {
		t.Fatalf("%d applications", len(ebm.Applications()))
	}
	if _, ok := ebm.AppByName("BFS"); !ok {
		t.Fatal("AppByName")
	}
	if len(ebm.TLPLevels()) != 8 || ebm.MaxTLP != 24 {
		t.Fatal("TLP levels")
	}
	if len(ebm.RepresentativeWorkloads()) != 10 {
		t.Fatal("representative workloads")
	}
	if len(ebm.EvaluatedWorkloads()) != 25 {
		t.Fatal("evaluated workloads")
	}
	if len(ebm.ThreeAppWorkloads()) == 0 {
		t.Fatal("three-app workloads")
	}
	if _, ok := ebm.WorkloadByName("BLK_TRD"); !ok {
		t.Fatal("WorkloadByName")
	}
}

func TestFacadeRunWithPBS(t *testing.T) {
	wl, _ := ebm.WorkloadByName("BLK_BFS")
	res, err := ebm.Run(ebm.RunOptions{
		Config:             small(),
		Apps:               wl.Apps,
		Manager:            ebm.NewPBSWS(),
		TotalCycles:        40_000,
		WarmupCycles:       2_000,
		WindowCycles:       1_000,
		DesignatedSampling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 || res.Apps[0].IPC <= 0 {
		t.Fatal("degenerate result")
	}
}

func TestFacadeManagers(t *testing.T) {
	for _, m := range []ebm.Manager{
		ebm.NewStaticManager("s", []int{2, 8}),
		ebm.NewMaxTLPManager(2),
		ebm.NewDynCTA(),
		ebm.NewModBypass(),
		ebm.NewPBSWS(),
		ebm.NewPBSFI(),
		ebm.NewPBSFIGroup([]float64{1, 2}),
		ebm.NewPBSHS(),
	} {
		if m.Name() == "" {
			t.Error("unnamed manager")
		}
		d := m.Initial(2)
		if len(d.TLP) != 2 {
			t.Errorf("%s: bad initial decision", m.Name())
		}
	}
}

func TestFacadeMetrics(t *testing.T) {
	sd, err := ebm.Slowdowns([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ebm.WS(sd) != 1.5 || ebm.FI(sd) != 0.5 {
		t.Fatal("metric algebra through facade")
	}
	if ebm.HS(sd) <= 0 || ebm.EB(0.4, 0.2) != 2 {
		t.Fatal("HS/EB")
	}
	if ebm.EBWS([]float64{1, 1}) != 2 || ebm.EBFI([]float64{1, 1}, nil) != 1 {
		t.Fatal("EB metrics")
	}
	if ebm.EBHS([]float64{2, 2}, nil) != 2 {
		t.Fatal("EBHS")
	}
	if ebm.AloneRatio(1, 4) != 4 {
		t.Fatal("AloneRatio")
	}
	if ebm.ObjWS.String() != "WS" {
		t.Fatal("objective")
	}
}

func TestFacadeProfileAndGrid(t *testing.T) {
	blk, _ := ebm.AppByName("BLK")
	trd, _ := ebm.AppByName("TRD")
	suite, err := ebm.Profile([]ebm.App{blk, trd}, ebm.ProfileOptions{
		Config:       small(),
		CoresAlone:   2,
		Levels:       []int{1, 24},
		TotalCycles:  8_000,
		WarmupCycles: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	aloneIPC, err := suite.AloneIPC([]string{"BLK", "TRD"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ebm.BuildGrid([]ebm.App{blk, trd}, ebm.GridOptions{
		Config:       small(),
		Levels:       []int{1, 24},
		TotalCycles:  8_000,
		WarmupCycles: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	combo, v := g.Best(ebm.SDEval(ebm.ObjWS, aloneIPC))
	if len(combo) != 2 || v <= 0 {
		t.Fatal("grid search through facade")
	}
	if c, _ := g.Best(ebm.ITEval()); len(c) != 2 {
		t.Fatal("ITEval")
	}
	if c, _ := g.Best(ebm.EBEval(ebm.ObjFI, nil)); len(c) != 2 {
		t.Fatal("EBEval")
	}
}

func TestFacadeRecorderAndCost(t *testing.T) {
	rec := ebm.NewRecorder(2)
	wl, _ := ebm.WorkloadByName("BLK_TRD")
	_, err := ebm.Run(ebm.RunOptions{
		Config:       small(),
		Apps:         wl.Apps,
		TotalCycles:  5_000,
		WindowCycles: 1_000,
		OnWindow:     rec.Hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.TLP[0].Points) == 0 {
		t.Fatal("recorder empty")
	}
	if ebm.CostModel(2, 16, 8).TotalStorageBits <= 0 {
		t.Fatal("cost model")
	}
}
