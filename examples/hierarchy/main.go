// Hierarchy: build a custom (smaller) GPU, run one cache-sensitive kernel
// across the TLP knob, and decompose effective bandwidth level by level
// (the paper's Fig. 3 view): attained DRAM bandwidth, what the L2
// amplifies it to, and what the core finally observes.
package main

import (
	"fmt"
	"log"

	"ebm"
)

func main() {
	// A half-size machine: 8 cores, 4 memory partitions, 1 MB of L2.
	cfg := ebm.DefaultConfig()
	cfg.NumCores = 8
	cfg.NumMemPartitions = 4
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	app, ok := ebm.AppByName("FFT")
	if !ok {
		log.Fatal("FFT not in suite")
	}

	fmt.Printf("machine: %v\n\n", cfg)
	fmt.Printf("%4s %8s | %8s %8s %8s | %9s %9s %9s\n",
		"TLP", "IPC", "L1MR", "L2MR", "CMR", "EB@DRAM", "EB@L1", "EB@core")
	for _, tlpLevel := range ebm.TLPLevels() {
		res, err := ebm.Run(ebm.RunOptions{
			Config:       cfg,
			Apps:         []ebm.App{app},
			Manager:      ebm.NewStaticManager("fixed", []int{tlpLevel}),
			TotalCycles:  120_000,
			WarmupCycles: 20_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		a := res.Apps[0]
		// The Fig. 3 decomposition: each cache level divides by its miss
		// rate, amplifying the bandwidth the level above observes.
		ebDRAM := a.BW
		ebL1 := ebm.EB(a.BW, a.L2MR) // after the L2's amplification
		ebCore := ebm.EB(a.BW, a.CMR)
		fmt.Printf("%4d %8.3f | %8.3f %8.3f %8.3f | %9.3f %9.3f %9.3f\n",
			tlpLevel, a.IPC, a.L1MR, a.L2MR, a.CMR, ebDRAM, ebL1, ebCore)
	}
	fmt.Println("\nEB@core tracks IPC across the sweep — the observation the paper's")
	fmt.Println("TLP manager is built on (Section III-B, Equation 1).")
}
