// Multiprogram: run a batch of representative two-application workloads
// under every online TLP management scheme and print a Fig. 9-style
// comparison of weighted speedup and fairness.
package main

import (
	"fmt"
	"log"

	"ebm"
)

func main() {
	cfg := ebm.DefaultConfig()

	workloads := []string{"BLK_TRD", "BFS_FFT", "BLK_BFS", "FFT_TRD", "JPEG_CFD"}
	schemes := []struct {
		name string
		mk   func() ebm.Manager
	}{
		{"++maxTLP", func() ebm.Manager { return ebm.NewMaxTLPManager(2) }},
		{"++DynCTA", func() ebm.Manager { return ebm.NewDynCTA() }},
		{"Mod+Bypass", func() ebm.Manager { return ebm.NewModBypass() }},
		{"PBS-WS", func() ebm.Manager { return ebm.NewPBSWS() }},
	}

	// Profile the whole suite once (cached on disk for repeat runs).
	suite, err := ebm.ProfileCached("profiles.json", ebm.Applications(), ebm.ProfileOptions{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-12s %8s %8s %8s\n", "workload", "scheme", "WS", "FI", "vs best")
	for _, name := range workloads {
		wl, ok := ebm.WorkloadByName(name)
		if !ok {
			log.Fatalf("unknown workload %s", name)
		}
		aloneIPC, err := suite.AloneIPC(wl.Names())
		if err != nil {
			log.Fatal(err)
		}
		best, err := suite.BestTLPs(wl.Names())
		if err != nil {
			log.Fatal(err)
		}

		run := func(mgr ebm.Manager) (ws, fi float64) {
			res, err := ebm.Run(ebm.RunOptions{
				Config:             cfg,
				Apps:               wl.Apps,
				Manager:            mgr,
				TotalCycles:        800_000,
				WarmupCycles:       10_000,
				DesignatedSampling: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			sd, err := ebm.Slowdowns(res.IPCs(), aloneIPC)
			if err != nil {
				log.Fatal(err)
			}
			return ebm.WS(sd), ebm.FI(sd)
		}

		baseWS, baseFI := run(ebm.NewStaticManager("++bestTLP", best))
		fmt.Printf("%-10s %-12s %8.3f %8.3f %8s\n", name, "++bestTLP", baseWS, baseFI, "1.000")
		for _, sch := range schemes {
			ws, fi := run(sch.mk())
			fmt.Printf("%-10s %-12s %8.3f %8.3f %8.3f\n", name, sch.name, ws, fi, ws/baseWS)
		}
		fmt.Println()
	}
}
