// Quickstart: profile one application alone, then co-schedule two
// applications under the paper's PBS-WS manager and compare against the
// ++bestTLP baseline.
package main

import (
	"fmt"
	"log"

	"ebm"
)

func main() {
	cfg := ebm.DefaultConfig()

	// 1. Look at one application alone: how does TLP shape its IPC and
	//    effective bandwidth?
	bfs, ok := ebm.AppByName("BFS")
	if !ok {
		log.Fatal("BFS not in the suite")
	}
	prof, err := ebm.Profile([]ebm.App{bfs}, ebm.ProfileOptions{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	p := prof.Profiles["BFS"]
	fmt.Printf("BFS alone: bestTLP=%d IPC=%.2f EB=%.3f\n", p.BestTLP, p.BestIPC, p.BestEB)
	fmt.Println("TLP sweep (IPC / EB):")
	for _, l := range p.Levels {
		fmt.Printf("  TLP %2d: IPC %.3f  EB %.3f\n", l.TLP, l.Result.IPC, l.Result.EB)
	}

	// 2. Co-schedule BFS with FFT. First the naive baseline: each app at
	//    the TLP that was best when it ran alone.
	wl, _ := ebm.WorkloadByName("BFS_FFT")
	suite, err := ebm.Profile(wl.Apps, ebm.ProfileOptions{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	best, err := suite.BestTLPs(wl.Names())
	if err != nil {
		log.Fatal(err)
	}
	aloneIPC, err := suite.AloneIPC(wl.Names())
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, mgr ebm.Manager) {
		res, err := ebm.Run(ebm.RunOptions{
			Config:             cfg,
			Apps:               wl.Apps,
			Manager:            mgr,
			TotalCycles:        800_000,
			WarmupCycles:       10_000,
			DesignatedSampling: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		sd, err := ebm.Slowdowns(res.IPCs(), aloneIPC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s WS=%.3f FI=%.3f  (final TLPs: %d, %d)\n",
			label, ebm.WS(sd), ebm.FI(sd), res.Apps[0].FinalTLP, res.Apps[1].FinalTLP)
	}

	fmt.Printf("\nco-scheduling BFS+FFT (bestTLPs alone: %v):\n", best)
	report("++bestTLP", ebm.NewStaticManager("++bestTLP", best))
	// 3. The paper's mechanism: online pattern-based search over
	//    effective bandwidth.
	report("PBS-WS", ebm.NewPBSWS())
}
