// Fairness: a bandwidth bully (TRD, a streaming kernel) co-scheduled with
// an L2-sensitive victim (CFD). The example shows the slowdown imbalance
// under ++bestTLP and how PBS-FI rebalances effective bandwidth, then
// inspects the manager's sampling table (the Fig. 8 hardware structure).
package main

import (
	"fmt"
	"log"

	"ebm"
)

func main() {
	cfg := ebm.DefaultConfig()
	wl, ok := ebm.WorkloadByName("CFD_TRD")
	if !ok {
		log.Fatal("workload CFD_TRD unavailable")
	}

	suite, err := ebm.Profile(wl.Apps, ebm.ProfileOptions{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	aloneIPC, err := suite.AloneIPC(wl.Names())
	if err != nil {
		log.Fatal(err)
	}
	best, err := suite.BestTLPs(wl.Names())
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, mgr ebm.Manager) {
		res, err := ebm.Run(ebm.RunOptions{
			Config:             cfg,
			Apps:               wl.Apps,
			Manager:            mgr,
			TotalCycles:        800_000,
			WarmupCycles:       10_000,
			DesignatedSampling: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		sd, err := ebm.Slowdowns(res.IPCs(), aloneIPC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", label)
		for i, a := range res.Apps {
			fmt.Printf("  %-4s SD=%.3f  EB=%.3f  TLP(avg %.1f, final %d)\n",
				a.Name, sd[i], a.EB, a.AvgTLP, a.FinalTLP)
		}
		fmt.Printf("  WS=%.3f FI=%.3f (FI of 1.0 = perfectly fair)\n", ebm.WS(sd), ebm.FI(sd))
	}

	run("++bestTLP (each app tuned as if alone)", ebm.NewStaticManager("++bestTLP", best))

	pbs := ebm.NewPBSFI()
	run("PBS-FI (balance effective bandwidth online)", pbs)

	fmt.Println("\nPBS sampling table (TLP combination -> per-app EB):")
	for _, e := range pbs.Table() {
		fmt.Printf("  TLP%v  EB=%.3f / %.3f\n", e.TLP, e.EB[0], e.EB[1])
	}
	fmt.Printf("searches completed: %d, kernel restarts: %d\n", pbs.Searches(), pbs.Restarts())
}
