package ebm_test

// End-to-end tests of the paper's scientific claims on a reduced machine.
// These are the repository's "does the reproduction actually reproduce"
// guards: they exercise profiling, the grid searches, and the online PBS
// manager across module boundaries.

import (
	"testing"

	"ebm"
)

// claimsSetup profiles a pair and builds its grid on an 8-core machine
// with a reduced level set, small enough for the test suite.
type claimsSetup struct {
	cfg      ebm.Config
	wl       ebm.Workload
	aloneIPC []float64
	aloneEB  []float64
	bestTLPs []int
	grid     *ebm.Grid
}

func setupClaims(t *testing.T, a, b string) *claimsSetup {
	t.Helper()
	cfg := ebm.DefaultConfig()
	cfg.NumCores = 8
	cfg.NumMemPartitions = 8
	wl, ok := ebm.WorkloadByName(a + "_" + b)
	if !ok {
		t.Fatalf("workload %s_%s", a, b)
	}
	suite, err := ebm.Profile(wl.Apps, ebm.ProfileOptions{
		Config:       cfg,
		TotalCycles:  40_000,
		WarmupCycles: 8_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := &claimsSetup{cfg: cfg, wl: wl}
	if cs.aloneIPC, err = suite.AloneIPC(wl.Names()); err != nil {
		t.Fatal(err)
	}
	if cs.aloneEB, err = suite.AloneEB(wl.Names()); err != nil {
		t.Fatal(err)
	}
	if cs.bestTLPs, err = suite.BestTLPs(wl.Names()); err != nil {
		t.Fatal(err)
	}
	if cs.grid, err = ebm.BuildGrid(wl.Apps, ebm.GridOptions{
		Config:       cfg,
		TotalCycles:  40_000,
		WarmupCycles: 8_000,
	}); err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestClaimBestTLPIsSuboptimal: the paper's motivating observation — the
// ++bestTLP combination leaves significant WS on the table versus the
// exhaustive optimum for a contentious pair.
func TestClaimBestTLPIsSuboptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cs := setupClaims(t, "BFS", "FFT")
	wsEval := ebm.SDEval(ebm.ObjWS, cs.aloneIPC)
	base, err := cs.grid.At(cs.bestTLPs)
	if err != nil {
		t.Fatal(err)
	}
	_, optWS := cs.grid.Best(wsEval)
	gain := optWS / wsEval(base)
	if gain < 1.10 {
		t.Fatalf("optWS only %.3fx of ++bestTLP; the motivating gap is missing", gain)
	}
	t.Logf("optWS/bestTLP = %.3f (paper reports up to ~1.4 for BFS_FFT)", gain)
}

// TestClaimObservation1: the TLP combination maximizing EB-WS also yields
// (nearly) the highest WS — the proxy the whole mechanism rests on.
func TestClaimObservation1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, pair := range [][2]string{{"BFS", "FFT"}, {"BLK", "BFS"}} {
		cs := setupClaims(t, pair[0], pair[1])
		wsEval := ebm.SDEval(ebm.ObjWS, cs.aloneIPC)
		bfCombo, _ := cs.grid.Best(ebm.EBEval(ebm.ObjWS, nil))
		bfRes, err := cs.grid.At(bfCombo)
		if err != nil {
			t.Fatal(err)
		}
		_, optWS := cs.grid.Best(wsEval)
		frac := wsEval(bfRes) / optWS
		if frac < 0.90 {
			t.Errorf("%s_%s: BF-WS reaches only %.1f%% of optWS", pair[0], pair[1], 100*frac)
		} else {
			t.Logf("%s_%s: BF-WS reaches %.1f%% of optWS", pair[0], pair[1], 100*frac)
		}
	}
}

// TestClaimPBSOfflineNearOpt: the pattern-based search reaches most of the
// exhaustive EB search's WS with a quarter of the samples.
func TestClaimPBSOfflineNearOpt(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cs := setupClaims(t, "BFS", "FFT")
	wsEval := ebm.SDEval(ebm.ObjWS, cs.aloneIPC)
	combo, _ := cs.grid.PBSOffline(ebm.EBEval(ebm.ObjWS, nil), nil)
	res, err := cs.grid.At(combo)
	if err != nil {
		t.Fatal(err)
	}
	_, optWS := cs.grid.Best(wsEval)
	if frac := wsEval(res) / optWS; frac < 0.85 {
		t.Fatalf("PBS offline reaches only %.1f%% of optWS", 100*frac)
	}
}

// onlineSetup profiles a pair on the full default (Table I) machine —
// where the paper's contention gap lives — without building a grid.
func onlineSetup(t *testing.T, a, b string) (ebm.Config, ebm.Workload, []float64, []int) {
	t.Helper()
	cfg := ebm.DefaultConfig()
	wl, ok := ebm.WorkloadByName(a + "_" + b)
	if !ok {
		t.Fatalf("workload %s_%s", a, b)
	}
	suite, err := ebm.Profile(wl.Apps, ebm.ProfileOptions{
		Config:       cfg,
		TotalCycles:  60_000,
		WarmupCycles: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	aloneIPC, err := suite.AloneIPC(wl.Names())
	if err != nil {
		t.Fatal(err)
	}
	bestTLPs, err := suite.BestTLPs(wl.Names())
	if err != nil {
		t.Fatal(err)
	}
	return cfg, wl, aloneIPC, bestTLPs
}

func runOnline(t *testing.T, cfg ebm.Config, wl ebm.Workload, aloneIPC []float64, m ebm.Manager) []float64 {
	t.Helper()
	res, err := ebm.Run(ebm.RunOptions{
		Config:             cfg,
		Apps:               wl.Apps,
		Manager:            m,
		TotalCycles:        500_000,
		WarmupCycles:       5_000,
		WindowCycles:       2_500,
		DesignatedSampling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := ebm.Slowdowns(res.IPCs(), aloneIPC)
	if err != nil {
		t.Fatal(err)
	}
	return sd
}

// TestClaimOnlinePBSBeatsBestTLP: the full online mechanism — sampling
// hardware, search overheads, decision latency — still beats ++bestTLP on
// the Table I machine, where running each app at its alone-best TLP
// collapses system throughput.
func TestClaimOnlinePBSBeatsBestTLP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg, wl, aloneIPC, bestTLPs := onlineSetup(t, "BFS", "FFT")
	base := ebm.WS(runOnline(t, cfg, wl, aloneIPC, ebm.NewStaticManager("++bestTLP", bestTLPs)))
	pbs := ebm.WS(runOnline(t, cfg, wl, aloneIPC, ebm.NewPBSWS()))
	if pbs <= base {
		t.Fatalf("online PBS-WS (%.3f) did not beat ++bestTLP (%.3f)", pbs, base)
	}
	t.Logf("online PBS-WS %.3f vs ++bestTLP %.3f (+%.1f%%)", pbs, base, 100*(pbs/base-1))
}

// TestClaimPBSFIImprovesFairness: PBS-FI raises the fairness index over
// ++bestTLP on a bully/victim pair.
func TestClaimPBSFIImprovesFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg, wl, aloneIPC, bestTLPs := onlineSetup(t, "BLK", "BFS")
	base := ebm.FI(runOnline(t, cfg, wl, aloneIPC, ebm.NewStaticManager("++bestTLP", bestTLPs)))
	fi := ebm.FI(runOnline(t, cfg, wl, aloneIPC, ebm.NewPBSFI()))
	if fi <= base {
		t.Fatalf("PBS-FI fairness %.3f did not improve on ++bestTLP %.3f", fi, base)
	}
	t.Logf("PBS-FI FI %.3f vs ++bestTLP %.3f", fi, base)
}

// TestClaimEBTracksIPC: Equation 1 — for a single application, EB and IPC
// move together across the TLP sweep (their argmaxes are within one level).
func TestClaimEBTracksIPC(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := ebm.DefaultConfig()
	cfg.NumCores = 8
	app, _ := ebm.AppByName("FFT")
	suite, err := ebm.Profile([]ebm.App{app}, ebm.ProfileOptions{
		Config:       cfg,
		CoresAlone:   8,
		TotalCycles:  40_000,
		WarmupCycles: 8_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := suite.Profiles["FFT"]
	bestIPCIdx, bestEBIdx := 0, 0
	for i, l := range p.Levels {
		if l.Result.IPC > p.Levels[bestIPCIdx].Result.IPC {
			bestIPCIdx = i
		}
		if l.Result.EB > p.Levels[bestEBIdx].Result.EB {
			bestEBIdx = i
		}
	}
	if d := bestIPCIdx - bestEBIdx; d < -1 || d > 1 {
		t.Fatalf("IPC argmax level %d vs EB argmax level %d: EB does not track IPC",
			p.Levels[bestIPCIdx].TLP, p.Levels[bestEBIdx].TLP)
	}
}
