package ebm_test

// Distributed-sweep overhead benchmarks (DESIGN.md §15): the same
// 9-cell grid swept locally and through the full coordinator/worker
// wire protocol with a single worker. Both execute the cells strictly
// sequentially into a fresh result cache each iteration, so the pair
// isolates exactly the coordination tax — registration, leases,
// heartbeats, JSON results over HTTP, state checkpointing. The
// Makefile's dsweep-bench target asserts the distributed run stays
// within 1.10x of the local one (BENCH_10.json).

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"ebm/internal/config"
	"ebm/internal/dsweep"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/simcache"
	"ebm/internal/workload"
)

func benchDistSetup() (config.GPU, workload.Workload, []int, uint64, uint64) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	return cfg, workload.MustMake("BLK", "TRD"), []int{1, 8, 24}, 20_000, 2_000
}

func benchOpenCache(b *testing.B, dir string) *simcache.Cache {
	b.Helper()
	c, err := simcache.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkDistSweepLocal(b *testing.B) {
	cfg, wl, levels, total, warmup := benchDistSetup()
	pool := runner.New(2)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.BuildGrid(context.Background(), wl.Apps, search.GridOptions{
			Config: cfg, Levels: levels, TotalCycles: total, WarmupCycles: warmup,
			Parallelism: 1, Runner: pool, Cache: benchOpenCache(b, b.TempDir()),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistSweepOneWorker(b *testing.B) {
	cfg, wl, levels, total, warmup := benchDistSetup()
	cells := dsweep.GridCells(wl.Apps, dsweep.GridOptions{
		Config: cfg, Levels: levels, TotalCycles: total, WarmupCycles: warmup,
	})
	pool := runner.New(2)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		coord, err := dsweep.New(dsweep.Options{
			Cells: cells,
			Cache: benchOpenCache(b, dir),
			// The state checkpoint is part of the tax being measured.
			StatePath: filepath.Join(dir, "state.json"),
			Version:   "devel",
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(coord.Handler())
		w := dsweep.NewWorker(dsweep.WorkerOptions{
			ID: "bench", URL: srv.URL, Cache: benchOpenCache(b, dir), Runner: pool,
		})
		if err := w.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		if st := coord.Status(); st.Done != st.Total {
			b.Fatalf("sweep incomplete: %+v", st)
		}
		srv.Close()
		coord.Close()
	}
}
