package ebm_test

// Chaos tests: drive a real grid build through injected cache and
// checkpoint I/O failures, a crashing task, and a genuine mid-build
// SIGINT, and prove the resilience contract of DESIGN.md §10 end to end —
// the on-disk result cache is never torn, an interrupted sweep's state is
// resumable, and a clean rerun replays bit-identically from it even when
// it forks from checkpoints the faulty runs left behind. `make chaos`
// runs these under the race detector.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ebm/internal/ckpt"
	"ebm/internal/config"
	"ebm/internal/faultinject"
	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/simcache"
)

func chaosApps(t *testing.T) []kernel.Params {
	t.Helper()
	a, ok := kernel.ByName("BLK")
	if !ok {
		t.Fatal("no BLK")
	}
	b, ok := kernel.ByName("BFS")
	if !ok {
		t.Fatal("no BFS")
	}
	return []kernel.Params{a, b}
}

func chaosGridOpts(cache *simcache.Cache, pool *runner.Runner, store *ckpt.Store) search.GridOptions {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	return search.GridOptions{
		Config:       cfg,
		Levels:       []int{1, 8, 24},
		TotalCycles:  8_000,
		WarmupCycles: 2_000,
		Parallelism:  4,
		Runner:       pool,
		Cache:        cache,
		Ckpt:         store,
	}
}

// assertNoTornEntries parses every file in the cache directory: each
// .json entry must unmarshal with the current schema and a key matching
// its filename, and no abandoned temp files may remain visible as
// entries.
func assertNoTornEntries(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("unreadable cache entry %s: %v", e.Name(), err)
		}
		var entry struct {
			Schema int             `json:"schema"`
			Key    string          `json:"key"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(b, &entry); err != nil {
			t.Fatalf("torn cache entry %s: %v", e.Name(), err)
		}
		if entry.Schema != simcache.SchemaVersion {
			t.Fatalf("entry %s has schema %d, want %d", e.Name(), entry.Schema, simcache.SchemaVersion)
		}
		if want := strings.TrimSuffix(e.Name(), ".json"); entry.Key != want {
			t.Fatalf("entry %s carries key %s", e.Name(), entry.Key)
		}
	}
}

// TestChaosGridBuildSurvivesFaultsAndResumes is the full three-act
// storyline from the failure model:
//
// Act 1 — a grid build under injected cache read/write faults and exactly
// one task panic fails loudly (the panic surfaces as the build error),
// but every cache entry it managed to persist is valid.
//
// Act 2 — a rerun under a real SIGINT delivered mid-build aborts with
// a cancellation error, again leaving only valid entries, with part of
// the grid persisted.
//
// Act 3 — a clean rerun completes from the surviving state with cache
// hits (forking from whatever checkpoints the faulty runs persisted), and
// its grid is bit-identical to a build that never saw a fault.
func TestChaosGridBuildSurvivesFaultsAndResumes(t *testing.T) {
	apps := chaosApps(t)
	dir := t.TempDir()
	ckptDir := t.TempDir()

	// Reference: an undisturbed build in a separate cache directory, with
	// no checkpoint store at all.
	refPool := runner.New(4)
	refCache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := search.BuildGrid(context.Background(), apps, chaosGridOpts(refCache, refPool, nil))
	refPool.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Act 1: cache and checkpoint faults plus one injected task panic.
	oldWarnf := simcache.Warnf
	simcache.Warnf = func(string, ...any) {} // degradation warnings are expected noise here
	t.Cleanup(func() { simcache.Warnf = oldWarnf })
	oldCkptWarnf := ckpt.Warnf
	ckpt.Warnf = func(string, ...any) {}
	t.Cleanup(func() { ckpt.Warnf = oldCkptWarnf })

	cache1, err := simcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")
	ledger, err := obs.OpenLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ledger.Close() })
	cache1.SetLedger(ledger)
	inj := faultinject.New(faultinject.Config{
		Seed:              11,
		CacheReadErrProb:  0.3,
		CacheWriteErrProb: 0.3,
		TaskPanicProb:     1,
		MaxTaskPanics:     1,
	})
	reg := obs.NewRegistry()
	mon := resilience.NewMonitor(reg, nil)
	cache1.SetHooks(inj)
	cache1.SetResilience(resilience.Policy{
		Attempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
	}, mon)
	store1, err := ckpt.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	store1.SetEvery(1)
	store1.SetHooks(inj) // checkpoint reads and writes share the injector
	store1.SetResilience(resilience.Policy{
		Attempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
	}, mon)
	pool1 := runner.New(4)
	pool1.SetHooks(inj)
	_, err = search.BuildGrid(context.Background(), apps, chaosGridOpts(cache1, pool1, store1))
	pool1.Close()
	if err == nil {
		t.Fatal("the injected task panic did not surface as a build error")
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Fatalf("build error %v does not carry the injected panic", err)
	}
	if c := inj.Counts(); c.Panics != 1 {
		t.Fatalf("injector crashed %d tasks, want exactly 1", c.Panics)
	}
	assertNoTornEntries(t, dir)
	// The provenance ledger is the faulty build's honest confession: every
	// completed run appended a whole record, and the injected cache faults
	// and the retries they provoked are visible in those records.
	recs, skipped, err := obs.ReadLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("faulty build tore %d ledger lines", skipped)
	}
	if len(recs) == 0 {
		t.Fatal("no provenance records from the faulty build")
	}
	var faults, retries int
	for _, r := range recs {
		faults += len(r.Faults)
		retries += r.Retries
	}
	if faults == 0 && retries == 0 {
		t.Fatal("30% cache fault probability left no trace in any provenance record")
	}

	// Act 2: a real SIGINT lands mid-build. The notify context is exactly
	// what the sweep binary runs under.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cache2, err := simcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := ckpt.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	store2.SetEvery(1)
	pool2 := runner.New(2)
	opts2 := chaosGridOpts(cache2, pool2, store2)
	var sigSent atomic.Bool
	opts2.Progress = func(done, total int, combo []int) {
		if sigSent.CompareAndSwap(false, true) {
			syscall.Kill(os.Getpid(), syscall.SIGINT)
			// Progress runs under the builder's lock: holding it until the
			// signal lands guarantees no further combination is recorded
			// after the interrupt, making the partial-persist deterministic.
			select {
			case <-ctx.Done():
			case <-time.After(10 * time.Second):
			}
		}
	}
	_, err = search.BuildGrid(ctx, apps, opts2)
	pool2.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SIGINT build error = %v, want a context.Canceled wrap", err)
	}
	if ctx.Err() == nil {
		t.Fatal("the SIGINT never cancelled the notify context")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("build error %v does not report the interruption", err)
	}
	assertNoTornEntries(t, dir)
	persisted := cache2.Len()
	if persisted == 0 {
		t.Fatal("nothing persisted before the SIGINT: the resume would start cold")
	}

	// Act 3: clean resume. No hooks, background context; the surviving
	// cache entries replay, the remainder forks from whatever checkpoints
	// acts 1 and 2 persisted (or simulates from cycle zero where none
	// survived), and the grid must still match the checkpoint-free
	// reference bit for bit.
	cache3, err := simcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store3, err := ckpt.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	pool3 := runner.New(4)
	defer pool3.Close()
	resumed, err := search.BuildGrid(context.Background(), apps, chaosGridOpts(cache3, pool3, store3))
	if err != nil {
		t.Fatalf("clean resume failed: %v", err)
	}
	if hits := cache3.Stats().Hits; hits == 0 {
		t.Fatal("resume replayed nothing from the surviving cache state")
	}
	if !reflect.DeepEqual(resumed.Results, ref.Results) {
		t.Fatal("resumed grid is not bit-identical to the undisturbed build")
	}
	assertNoTornEntries(t, dir)
}
