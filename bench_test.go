package ebm_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (regenerating the panel's data end to end), plus
// ablation benches for the design choices DESIGN.md calls out and
// microbenchmarks of the simulator substrate.
//
// The experiment environment is shared and cached across benchmarks: the
// first benchmark touching a workload pays for its exhaustive grid; later
// iterations reuse it, so -benchtime=1x is the intended way to regenerate
// everything:
//
//	go test -bench=. -benchmem -benchtime=1x

import (
	"context"
	"io"
	"path/filepath"
	"sync"
	"testing"

	"ebm"
	"ebm/internal/ckpt"
	"ebm/internal/config"
	"ebm/internal/experiments"
	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/policy"
	"ebm/internal/search"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env returns the shared benchmark environment: the default Table I
// machine at reduced run lengths, over the ten representative workloads.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(nil, experiments.Options{
			Config:       config.Default(),
			ProfileCache: "profiles_bench.json",
			GridCycles:   40_000,
			GridWarmup:   8_000,
			EvalCycles:   100_000,
			EvalWarmup:   5_000,
			WindowCycles: 2_000,
			Workloads:    workload.Representative(),
		})
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

func benchExperiment(b *testing.B, id string) {
	e := env(b)
	x, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Run(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table. ---

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// --- One benchmark per paper figure. ---

func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12HS regenerates the reconstructed harmonic-speedup panel.
func BenchmarkFig12HS(b *testing.B) { benchExperiment(b, "fig12") }

// --- Sensitivity and scalability panels (Section VI-D, reconstructed). ---

func BenchmarkSensCores(b *testing.B) { benchExperiment(b, "cores") }
func BenchmarkSensL2(b *testing.B)    { benchExperiment(b, "l2part") }
func BenchmarkThreeApp(b *testing.B)  { benchExperiment(b, "3app") }

// --- Ablation benches (design choices from DESIGN.md). ---

func BenchmarkAblationObjective(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkExtras regenerates the extension panels (CCWS baseline, kernel
// phases with drift-triggered re-search, DRAM refresh fidelity).
func BenchmarkExtras(b *testing.B) { benchExperiment(b, "extras") }

// BenchmarkAblationNaive contrasts the sample count of pattern-based
// searching against naive exhaustive online sampling for one workload.
func BenchmarkAblationNaive(b *testing.B) {
	e := env(b)
	wl := workload.MustMake("BLK", "TRD")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := e.Grid(wl)
		if err != nil {
			b.Fatal(err)
		}
		if c, _ := g.PBSOffline(ebm.EBEval(ebm.ObjWS, nil), nil); len(c) != 2 {
			b.Fatal("search failed")
		}
		if c, _ := g.Best(ebm.EBEval(ebm.ObjWS, nil)); len(c) != 2 {
			b.Fatal("exhaustive failed")
		}
	}
}

// BenchmarkAblationWindow runs online PBS-WS at two window lengths.
func BenchmarkAblationWindow(b *testing.B) {
	e := env(b)
	wl := workload.MustMake("BLK", "BFS")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, win := range []uint64{1_000, 5_000} {
			s, err := sim.New(sim.Options{
				Config:             e.Opt.Config,
				Apps:               wl.Apps,
				Manager:            ebm.NewPBSWS(),
				TotalCycles:        e.Opt.EvalCycles,
				WarmupCycles:       e.Opt.EvalWarmup,
				WindowCycles:       win,
				DesignatedSampling: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			s.Run()
		}
	}
}

// BenchmarkAblationScaling compares EB-FI scaling-factor sources offline.
func BenchmarkAblationScaling(b *testing.B) {
	e := env(b)
	wl := workload.MustMake("BLK", "TRD")
	exact, err := e.Suite.AloneEB(wl.Names())
	if err != nil {
		b.Fatal(err)
	}
	group, err := e.Suite.GroupEB(wl.Names())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := e.Grid(wl)
		if err != nil {
			b.Fatal(err)
		}
		for _, scale := range [][]float64{nil, group, exact} {
			g.PBSOfflineFI(scale, nil)
		}
	}
}

// BenchmarkAblationSampling compares designated vs aggregated telemetry.
func BenchmarkAblationSampling(b *testing.B) {
	e := env(b)
	wl := workload.MustMake("BFS", "FFT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, designated := range []bool{true, false} {
			s, err := sim.New(sim.Options{
				Config:             e.Opt.Config,
				Apps:               wl.Apps,
				Manager:            ebm.NewPBSWS(),
				TotalCycles:        e.Opt.EvalCycles,
				WarmupCycles:       e.Opt.EvalWarmup,
				WindowCycles:       e.Opt.WindowCycles,
				DesignatedSampling: designated,
			})
			if err != nil {
				b.Fatal(err)
			}
			s.Run()
		}
	}
}

// --- Warm-cache workflow (DESIGN.md §8). ---

// benchFigsEnv builds a paperfigs-quick-shaped environment (profile suite,
// grids on demand, evaluation loop) on a reduced machine, backed by the
// result cache at dir.
func benchFigsEnv(b *testing.B, dir string) *experiments.Env {
	b.Helper()
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	e, err := experiments.NewEnv(nil, experiments.Options{
		Config:       cfg,
		GridCycles:   8_000,
		GridWarmup:   1_000,
		EvalCycles:   20_000,
		EvalWarmup:   1_000,
		WindowCycles: 1_000,
		Workloads: []workload.Workload{
			workload.MustMake("BLK", "BFS"),
			workload.MustMake("BFS", "FFT"),
		},
		SimCache: dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchFigsPanel(b *testing.B, e *experiments.Env) {
	b.Helper()
	x, ok := experiments.ByID("fig9")
	if !ok {
		b.Fatal("fig9 not registered")
	}
	if err := x.Run(e, io.Discard); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPaperFigsQuickCold measures the cold path of the warm-cache
// workflow: every iteration profiles, builds grids, and evaluates into a
// fresh (empty) result cache, as a first `paperfigs -all -quick` would.
func BenchmarkPaperFigsQuickCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFigsPanel(b, benchFigsEnv(b, b.TempDir()))
	}
}

// BenchmarkPaperFigsQuickWarm is the same work against a prewarmed cache:
// a fresh environment per iteration whose every simulation replays from
// disk. The Makefile's figs-bench target asserts this stays at most 0.2x
// of the cold benchmark (the >=5x warm speedup contract).
func BenchmarkPaperFigsQuickWarm(b *testing.B) {
	dir := b.TempDir()
	benchFigsPanel(b, benchFigsEnv(b, dir)) // prewarm: pay the simulations once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchFigsPanel(b, benchFigsEnv(b, dir))
	}
}

// --- Fork-from-checkpoint workflow (DESIGN.md §11). ---

// benchCkptGrid builds the 36-cell static grid (two apps, six TLP levels
// per axis) on the reduced machine at the given horizon, with each
// uncached cell executing through store when one is supplied.
func benchCkptGrid(b *testing.B, total uint64, cacheDir string, store *ckpt.Store) {
	b.Helper()
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	wl := workload.MustMake("BLK", "TRD")
	var cache *simcache.Cache
	if cacheDir != "" {
		var err error
		cache, err = simcache.Open(cacheDir)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, err := search.BuildGrid(nil, wl.Apps, search.GridOptions{
		Config:       cfg,
		Levels:       []int{1, 2, 4, 8, 16, 24},
		TotalCycles:  total,
		WarmupCycles: 2_000,
		Cache:        cache,
		Ckpt:         store,
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCkptSweepCold measures a straight cold grid sweep: every
// iteration simulates all 36 combinations from cycle zero into a fresh
// (empty) result cache.
func BenchmarkCkptSweepCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchCkptGrid(b, 50_000, b.TempDir(), nil)
	}
}

// BenchmarkCkptSweepForked is the same cold sweep forking from prefix
// checkpoints: an untimed shorter-horizon build persists one engine
// snapshot per combination at cycle 30,000, then every timed iteration —
// still against a fresh, empty result cache — restores each cell from its
// snapshot and simulates only the remaining 20,000 cycles. The Makefile's
// ckpt-bench target asserts this stays at most 0.5x of the cold benchmark
// (the sub-linear cold-sweep contract).
func BenchmarkCkptSweepForked(b *testing.B) {
	store, err := ckpt.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// 30,000 cycles is 6 default windows; Every(6) persists exactly the
	// run-end snapshot of each combination.
	store.SetEvery(6)
	benchCkptGrid(b, 30_000, "", store) // prewarm: pay the shared prefixes once
	store.SetEvery(0)                   // read-only: timed iterations fork, never write
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCkptGrid(b, 50_000, b.TempDir(), store)
	}
}

// --- Adaptive coarse-to-fine TLP search (DESIGN.md §13). ---

// benchSearchSetup is the shared shape of the search benchmarks: the
// reduced machine, the BLK_TRD workload, the paper's full eight-level
// ladder (64 cells exhaustively), and a 50,000-cycle full horizon.
func benchSearchSetup() (config.GPU, workload.Workload, []int, uint64, uint64) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	return cfg, workload.MustMake("BLK", "TRD"), ebm.TLPLevels(), 50_000, 2_000
}

// benchAloneIPC derives positive per-app "alone" IPCs from the max-TLP
// cell, the same shortcut the search tests use: it gives the
// slowdown-based objective a realistic peaked surface without profiling
// the full alone suite. Runs before the timed sub-benchmarks.
func benchAloneIPC(b *testing.B, cfg config.GPU, wl workload.Workload, levels []int, total, warmup uint64) []float64 {
	b.Helper()
	g, err := search.BuildGrid(nil, wl.Apps, search.GridOptions{
		Config:       cfg,
		Levels:       levels[len(levels)-1:],
		TotalCycles:  total,
		WarmupCycles: warmup,
	})
	if err != nil {
		b.Fatal(err)
	}
	maxC := make([]int, len(wl.Apps))
	for i := range maxC {
		maxC[i] = levels[len(levels)-1]
	}
	r, err := g.At(maxC)
	if err != nil {
		b.Fatal(err)
	}
	ipc := r.IPCsInto(nil)
	for i := range ipc {
		if ipc[i] <= 0 {
			ipc[i] = 1e-6
		}
	}
	return ipc
}

// BenchmarkAdaptiveVsExhaustive contrasts the two offline searches for
// the same optimum — the paper's optWS pick, maximizing SD-based weighted
// speedup — both fully cold per iteration. The exhaustive side simulates
// every grid cell at the full horizon; the adaptive side runs the
// coarse-to-fine successive-halving search against a fresh checkpoint
// store (rung continuations fork instead of replaying). Both report the
// engine cycles actually executed as simcycles/op; the Makefile's
// search-bench target asserts adaptive stays at most 0.5x of exhaustive
// wall-clock and records the cycle ratio in BENCH_8.json.
func BenchmarkAdaptiveVsExhaustive(b *testing.B) {
	cfg, wl, levels, total, warmup := benchSearchSetup()
	aloneIPC := benchAloneIPC(b, cfg, wl, levels, total, warmup)

	b.Run("exhaustive", func(b *testing.B) {
		eval := search.SDEval(ebm.ObjWS, aloneIPC)
		work0 := sim.CyclesSimulated()
		for i := 0; i < b.N; i++ {
			g, err := search.BuildGrid(nil, wl.Apps, search.GridOptions{
				Config:       cfg,
				Levels:       levels,
				TotalCycles:  total,
				WarmupCycles: warmup,
			})
			if err != nil {
				b.Fatal(err)
			}
			g.Best(eval)
		}
		b.ReportMetric(float64(sim.CyclesSimulated()-work0)/float64(b.N), "simcycles/op")
	})

	b.Run("adaptive", func(b *testing.B) {
		eval := search.SDEval(ebm.ObjWS, aloneIPC)
		work0 := sim.CyclesSimulated()
		for i := 0; i < b.N; i++ {
			store, err := ckpt.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := search.Adaptive(nil, wl.Apps, eval, search.AdaptiveOptions{
				Config:       cfg,
				Levels:       levels,
				TotalCycles:  total,
				WarmupCycles: warmup,
				Rungs:        4,
				Ckpt:         store,
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(sim.CyclesSimulated()-work0)/float64(b.N), "simcycles/op")
	})
}

// --- Substrate microbenchmarks. ---

// BenchmarkSimulatorCycles measures raw simulation speed: simulated core
// cycles per wall second on the full two-application machine.
func BenchmarkSimulatorCycles(b *testing.B) {
	wl := workload.MustMake("BLK", "BFS")
	const cycles = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Options{
			Config:      config.Default(),
			Apps:        wl.Apps,
			TotalCycles: cycles,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
	b.ReportMetric(float64(cycles*uint64(b.N))/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSimulatorCyclesObs is BenchmarkSimulatorCycles with every
// observability sink enabled (metrics registry, event journal, phase
// polling). The Makefile's obs-bench target asserts its ns/op stays
// within 5% of the plain benchmark (DESIGN.md §7's overhead contract).
func BenchmarkSimulatorCyclesObs(b *testing.B) {
	wl := workload.MustMake("BLK", "BFS")
	const cycles = 50_000
	// The observer outlives runs (a scrape endpoint serves many
	// simulations), so its construction and metric registration are
	// one-time setup, not steady-state overhead; keep them untimed.
	observer := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Journal: obs.NewJournal(),
		PhaseFn: func() string { return "stable" },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Options{
			Config:      config.Default(),
			Apps:        wl.Apps,
			TotalCycles: cycles,
			Obs:         observer,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
	b.ReportMetric(float64(cycles*uint64(b.N))/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSimulatorCyclesSandboxed is BenchmarkSimulatorCycles with the
// manager wrapped in the policy sandbox (panic isolation, decision
// validation; no time budget). The Makefile's policy-bench target asserts
// its ns/op stays within 5% of the plain benchmark (the sandbox overhead
// contract of DESIGN.md §14).
func BenchmarkSimulatorCyclesSandboxed(b *testing.B) {
	wl := workload.MustMake("BLK", "BFS")
	const cycles = 50_000
	// The guard outlives runs like an observer does; construction stays
	// untimed. It wraps the same default manager sim.New would build.
	guard := policy.Wrap(spec.MustManager(spec.MaxTLP(), len(wl.Apps)), policy.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Options{
			Config:      config.Default(),
			Apps:        wl.Apps,
			TotalCycles: cycles,
			Manager:     guard,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
	b.ReportMetric(float64(cycles*uint64(b.N))/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkAloneProfile measures one application's full TLP profile.
func BenchmarkAloneProfile(b *testing.B) {
	app, _ := kernel.ByName("BFS")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ebm.Profile([]ebm.App{app}, ebm.ProfileOptions{
			Config:       config.Default(),
			TotalCycles:  30_000,
			WarmupCycles: 5_000,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarpStream measures synthetic instruction generation.
func BenchmarkWarpStream(b *testing.B) {
	p, _ := kernel.ByName("BFS")
	s := kernel.NewWarpStream(&p, 0, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Current()
		s.Advance()
	}
}

// --- Span tracing + provenance overhead (DESIGN.md §12). ---

// benchTraceGrid builds the 36-cell static grid cold at a short horizon
// into a fresh result cache, under whatever tracer the context carries
// and whatever ledger the cache carries.
func benchTraceGrid(b *testing.B, ctx context.Context, cache *simcache.Cache) {
	b.Helper()
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	wl := workload.MustMake("BLK", "TRD")
	if _, err := search.BuildGrid(ctx, wl.Apps, search.GridOptions{
		Config:       cfg,
		Levels:       []int{1, 2, 4, 8, 16, 24},
		TotalCycles:  20_000,
		WarmupCycles: 2_000,
		Cache:        cache,
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceSweepPlain measures the cold grid sweep with no tracer
// and no ledger — the uninstrumented baseline.
func BenchmarkTraceSweepPlain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cache, err := simcache.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		benchTraceGrid(b, context.Background(), cache)
	}
}

// BenchmarkTraceSweepTraced is the same cold sweep with the full
// observability stack on: a span tracer on the context and a provenance
// ledger on the cache, both live for every cell. The Makefile's
// trace-bench target asserts this stays at most 1.05x of the plain
// benchmark (the DESIGN.md §12 overhead contract: spans and provenance
// are orchestration-granularity and never measurable on a real sweep).
func BenchmarkTraceSweepTraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cache, err := simcache.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		ledger, err := obs.OpenLedger(filepath.Join(b.TempDir(), "ledger.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		cache.SetLedger(ledger)
		ctx := obs.WithTracer(context.Background(), obs.NewTracer())
		benchTraceGrid(b, ctx, cache)
		if err := ledger.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
