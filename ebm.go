package ebm

import (
	"context"

	"ebm/internal/config"
	pbscore "ebm/internal/core"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/profile"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
	"ebm/internal/tlp"
	"ebm/internal/workload"
)

// Config describes the simulated GPU (the paper's Table I).
type Config = config.GPU

// DefaultConfig returns the baseline Table I machine.
func DefaultConfig() Config { return config.Default() }

// TLPLevels returns the selectable per-application TLP levels (Table II's
// knob positions; 8 levels yield the paper's 64 two-app combinations).
func TLPLevels() []int { return append([]int(nil), config.TLPLevels...) }

// MaxTLP is the largest TLP level (48 warps over two schedulers).
const MaxTLP = config.MaxTLP

// App is a synthetic GPGPU application model (Table IV's suite).
type App = kernel.Params

// Applications returns the 26-application suite.
func Applications() []App { return kernel.All() }

// AppByName looks up a suite application by its Table IV abbreviation.
func AppByName(name string) (App, bool) { return kernel.ByName(name) }

// Workload is a named set of co-scheduled applications.
type Workload = workload.Workload

// RepresentativeWorkloads returns the ten two-application workloads whose
// per-workload panels appear in the paper's Figs. 4, 9, and 10.
func RepresentativeWorkloads() []Workload { return workload.Representative() }

// EvaluatedWorkloads returns the full 25-workload evaluation set.
func EvaluatedWorkloads() []Workload { return workload.Evaluated() }

// ThreeAppWorkloads returns the three-application scalability workloads.
func ThreeAppWorkloads() []Workload { return workload.ThreeApp() }

// WorkloadByName resolves names like "BLK_TRD" (any underscore-joined
// suite applications are accepted).
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// RunOptions configures one simulation; see the fields of sim.Options.
type RunOptions = sim.Options

// Result is the measured outcome of a run.
type Result = sim.Result

// AppResult is one application's measured behaviour.
type AppResult = sim.AppResult

// Run executes one simulation to completion.
func Run(opts RunOptions) (Result, error) {
	s, err := sim.New(opts)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// Manager is a TLP management policy.
type Manager = tlp.Manager

// Sample is the per-window telemetry a Manager observes.
type Sample = tlp.Sample

// Decision is a Manager's requested TLP/bypass configuration.
type Decision = tlp.Decision

// SchemeSpec is the canonical serializable description of a TLP
// management scheme: a kind plus typed knobs. Every manager this package
// can build is expressible as a SchemeSpec, and a SchemeSpec round-trips
// through JSON and the flag-string grammar (ParseScheme / String).
type SchemeSpec = spec.SchemeSpec

// RunSpec is the full serializable description of one simulation —
// machine, applications, scheme, run lengths — the service-facing
// request type behind ExecuteSpec and the result cache.
type RunSpec = spec.RunSpec

// ParseScheme parses the canonical scheme grammar, e.g. "static:2,8",
// "pbs-fi:scaling=group", "ccws:hivta=0.2,hyst=3".
func ParseScheme(s string) (SchemeSpec, error) { return spec.ParseScheme(s) }

// SchemeKinds lists every registered scheme kind in presentation order.
func SchemeKinds() []string { return spec.Kinds() }

// SchemeFlagHelp is the one-line usage string for scheme flags.
func SchemeFlagHelp() string { return spec.FlagHelp() }

// NewManager builds the described scheme's manager for numApps
// co-scheduled applications through the registry.
func NewManager(s SchemeSpec, numApps int) (Manager, error) {
	return s.Manager(numApps)
}

// ExecuteSpec runs a declarative run description to completion.
func ExecuteSpec(rs RunSpec) (Result, error) {
	return sim.Execute(context.Background(), rs)
}

// ExecuteSpecContext is ExecuteSpec under a cancellation context: the run
// aborts cooperatively at the next sampling-window boundary and returns
// ctx.Err() with a zero Result.
func ExecuteSpecContext(ctx context.Context, rs RunSpec) (Result, error) {
	return sim.Execute(ctx, rs)
}

// ExecuteSpecCached is ExecuteSpec through an optional result cache (nil
// skips caching) and the shared executor: equivalent requests
// deduplicate and replay bit-identically from disk.
func ExecuteSpecCached(cache *SimCache, rs RunSpec) (Result, error) {
	return simcache.RunCached(context.Background(), cache, nil, 0, rs, nil)
}

// NewStaticManager runs a fixed TLP combination (e.g. ++bestTLP). The
// name is display-only; equivalently labeled runs share cache entries.
func NewStaticManager(name string, tlps []int) Manager {
	return spec.MustManager(spec.Labeled(name, tlps, nil), len(tlps))
}

// NewMaxTLPManager runs every application at maxTLP.
func NewMaxTLPManager(numApps int) Manager {
	return spec.MustManager(spec.MaxTLP(), numApps)
}

// NewDynCTA returns the DynCTA-style per-application modulation baseline.
func NewDynCTA() Manager { return spec.MustManager(spec.DynCTA(), 0) }

// NewModBypass returns the Mod+Bypass baseline (TLP modulation plus L1
// bypassing for cache-insensitive applications).
func NewModBypass() Manager { return spec.MustManager(spec.ModBypass(), 0) }

// NewCCWS returns the cache-conscious wavefront-scheduling-inspired
// baseline; enable the detector with RunOptions.VictimTags (e.g. 32).
func NewCCWS() Manager { return spec.MustManager(spec.CCWS(), 0) }

// PBS is the paper's online pattern-based searching manager.
type PBS = pbscore.PBS

func mustPBS(s SchemeSpec, numApps int) *PBS {
	p, err := spec.PBSManager(s, numApps)
	if err != nil {
		panic(err)
	}
	return p
}

// NewPBSWS returns PBS-WS: pattern-based search maximizing EB-WS.
func NewPBSWS() *PBS { return mustPBS(spec.PBS(metrics.ObjWS), 0) }

// NewPBSFI returns PBS-FI with online-sampled alone-EB scaling.
func NewPBSFI() *PBS { return mustPBS(spec.PBS(metrics.ObjFI), 0) }

// NewPBSFIGroup returns PBS-FI with user-supplied (group) scaling factors.
func NewPBSFIGroup(groupEB []float64) *PBS {
	s := spec.PBS(metrics.ObjFI)
	s.PBS.Scaling = "group"
	s.PBS.GroupEB = append([]float64(nil), groupEB...)
	return mustPBS(s, len(groupEB))
}

// NewPBSHS returns PBS-HS (harmonic weighted speedup objective).
func NewPBSHS() *PBS { return mustPBS(spec.PBS(metrics.ObjHS), 0) }

// Objective selects WS, FI, or HS for searches and metrics.
type Objective = metrics.Objective

// Objectives.
const (
	ObjWS = metrics.ObjWS
	ObjFI = metrics.ObjFI
	ObjHS = metrics.ObjHS
)

// Metric helpers (Table III).
var (
	// Slowdowns computes SD = IPC-Shared / IPC-Alone per application.
	Slowdowns = metrics.Slowdowns
	// WS is the weighted speedup of a slowdown vector.
	WS = metrics.WS
	// FI is the fairness index of a slowdown vector.
	FI = metrics.FI
	// HS is the harmonic weighted speedup of a slowdown vector.
	HS = metrics.HS
	// EB computes effective bandwidth from attained BW and combined miss
	// rate.
	EB = metrics.EB
	// EBWS, EBFI, EBHS are the EB-based proxies.
	EBWS = metrics.EBWS
	EBFI = metrics.EBFI
	EBHS = metrics.EBHS
	// AloneRatio is the Fig. 5 bias measure max(m1/m2, m2/m1).
	AloneRatio = metrics.AloneRatio
)

// ProfileOptions configures alone-run profiling.
type ProfileOptions = profile.Options

// AppProfile is one application's alone profile (a Table IV row).
type AppProfile = profile.AppProfile

// ProfileSuite holds alone profiles for a set of applications.
type ProfileSuite = profile.Suite

// Profile profiles every application alone across all TLP levels,
// producing bestTLP, IPC@bestTLP, EB@bestTLP, and the G1..G4 groups.
func Profile(apps []App, opts ProfileOptions) (*ProfileSuite, error) {
	return profile.ProfileSuite(context.Background(), apps, opts)
}

// ProfileCached is Profile with a JSON cache at path ("" disables).
func ProfileCached(path string, apps []App, opts ProfileOptions) (*ProfileSuite, error) {
	return profile.LoadOrProfile(context.Background(), path, apps, opts)
}

// Grid holds one Result per TLP combination of a workload, powering the
// exhaustive comparison points (optWS/FI/HS and BF-WS/FI/HS) and offline
// PBS.
type Grid = search.Grid

// GridOptions configures BuildGrid.
type GridOptions = search.GridOptions

// BuildGrid simulates a workload under every TLP combination.
func BuildGrid(apps []App, opts GridOptions) (*Grid, error) {
	return search.BuildGrid(context.Background(), apps, opts)
}

// AdaptiveOptions configures AdaptiveSearch.
type AdaptiveOptions = search.AdaptiveOptions

// AdaptiveResult is the outcome of one adaptive search.
type AdaptiveResult = search.AdaptiveResult

// AdaptiveSearch finds the eval-maximizing TLP combination without
// building the exhaustive grid: a coarse pass brackets the optimum on a
// subsampled ladder, a refine pass searches inside the bracket, and
// candidates are pruned by successive halving over short horizons
// (continuations fork from checkpoints when opts.Ckpt is set). See
// DESIGN.md §13.
func AdaptiveSearch(apps []App, eval Eval, opts AdaptiveOptions) (AdaptiveResult, error) {
	return search.Adaptive(context.Background(), apps, eval, opts)
}

// Eval scores one grid cell; see SDEval, EBEval, ITEval.
type Eval = search.Eval

// Grid evaluators.
var (
	// SDEval scores by a slowdown-based objective (needs alone IPCs).
	SDEval = search.SDEval
	// EBEval scores by an EB-based objective (optional scaling).
	EBEval = search.EBEval
	// ITEval scores by raw instruction throughput.
	ITEval = search.ITEval
)

// Recorder captures per-window time series (Fig. 11).
type Recorder = obs.Recorder

// NewRecorder builds a Recorder for numApps applications; install its Hook
// as RunOptions.OnWindow.
func NewRecorder(numApps int) *Recorder { return obs.NewRecorder(numApps) }

// Runner is the process-wide bounded simulation executor: a priority
// queue with singleflight dedup that profiles, grids, and evaluations
// all submit to.
type Runner = runner.Runner

// NewRunner starts a private pool (tests, embedding); most callers want
// DefaultRunner.
func NewRunner(workers int) *Runner { return runner.New(workers) }

// DefaultRunner returns the shared process-wide pool.
func DefaultRunner() *Runner { return runner.Default() }

// SimCache is the versioned, content-addressed on-disk cache of
// simulation results; cached results are bit-identical to fresh ones.
type SimCache = simcache.Cache

// OpenSimCache opens (creating if needed) a result cache rooted at dir.
func OpenSimCache(dir string) (*SimCache, error) { return simcache.Open(dir) }

// HardwareCost itemizes the mechanism's hardware overheads (Fig. 8).
type HardwareCost = pbscore.HardwareCost

// CostModel returns the overhead accounting for a machine shape.
func CostModel(numApps, numCores, numMemPartitions int) HardwareCost {
	return pbscore.CostModel(numApps, numCores, numMemPartitions)
}
