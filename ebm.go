package ebm

import (
	"ebm/internal/config"
	pbscore "ebm/internal/core"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/profile"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/tlp"
	"ebm/internal/trace"
	"ebm/internal/workload"
)

// Config describes the simulated GPU (the paper's Table I).
type Config = config.GPU

// DefaultConfig returns the baseline Table I machine.
func DefaultConfig() Config { return config.Default() }

// TLPLevels returns the selectable per-application TLP levels (Table II's
// knob positions; 8 levels yield the paper's 64 two-app combinations).
func TLPLevels() []int { return append([]int(nil), config.TLPLevels...) }

// MaxTLP is the largest TLP level (48 warps over two schedulers).
const MaxTLP = config.MaxTLP

// App is a synthetic GPGPU application model (Table IV's suite).
type App = kernel.Params

// Applications returns the 26-application suite.
func Applications() []App { return kernel.All() }

// AppByName looks up a suite application by its Table IV abbreviation.
func AppByName(name string) (App, bool) { return kernel.ByName(name) }

// Workload is a named set of co-scheduled applications.
type Workload = workload.Workload

// RepresentativeWorkloads returns the ten two-application workloads whose
// per-workload panels appear in the paper's Figs. 4, 9, and 10.
func RepresentativeWorkloads() []Workload { return workload.Representative() }

// EvaluatedWorkloads returns the full 25-workload evaluation set.
func EvaluatedWorkloads() []Workload { return workload.Evaluated() }

// ThreeAppWorkloads returns the three-application scalability workloads.
func ThreeAppWorkloads() []Workload { return workload.ThreeApp() }

// WorkloadByName resolves names like "BLK_TRD" (any underscore-joined
// suite applications are accepted).
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// RunOptions configures one simulation; see the fields of sim.Options.
type RunOptions = sim.Options

// Result is the measured outcome of a run.
type Result = sim.Result

// AppResult is one application's measured behaviour.
type AppResult = sim.AppResult

// Run executes one simulation to completion.
func Run(opts RunOptions) (Result, error) {
	s, err := sim.New(opts)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// Manager is a TLP management policy.
type Manager = tlp.Manager

// Sample is the per-window telemetry a Manager observes.
type Sample = tlp.Sample

// Decision is a Manager's requested TLP/bypass configuration.
type Decision = tlp.Decision

// NewStaticManager runs a fixed TLP combination (e.g. ++bestTLP).
func NewStaticManager(name string, tlps []int) Manager {
	return tlp.NewStatic(name, tlps, nil)
}

// NewMaxTLPManager runs every application at maxTLP.
func NewMaxTLPManager(numApps int) Manager { return tlp.NewMaxTLP(numApps) }

// NewDynCTA returns the DynCTA-style per-application modulation baseline.
func NewDynCTA() Manager { return tlp.NewDynCTA() }

// NewModBypass returns the Mod+Bypass baseline (TLP modulation plus L1
// bypassing for cache-insensitive applications).
func NewModBypass() Manager { return tlp.NewModBypass() }

// NewCCWS returns the cache-conscious wavefront-scheduling-inspired
// baseline; enable the detector with RunOptions.VictimTags (e.g. 32).
func NewCCWS() Manager { return tlp.NewCCWS() }

// PBS is the paper's online pattern-based searching manager.
type PBS = pbscore.PBS

// NewPBSWS returns PBS-WS: pattern-based search maximizing EB-WS.
func NewPBSWS() *PBS { return pbscore.NewPBS(metrics.ObjWS) }

// NewPBSFI returns PBS-FI with online-sampled alone-EB scaling.
func NewPBSFI() *PBS { return pbscore.NewPBS(metrics.ObjFI) }

// NewPBSFIGroup returns PBS-FI with user-supplied (group) scaling factors.
func NewPBSFIGroup(groupEB []float64) *PBS {
	p := pbscore.NewPBS(metrics.ObjFI)
	p.Scaling = pbscore.GroupScale
	p.GroupValues = append([]float64(nil), groupEB...)
	return p
}

// NewPBSHS returns PBS-HS (harmonic weighted speedup objective).
func NewPBSHS() *PBS { return pbscore.NewPBS(metrics.ObjHS) }

// Objective selects WS, FI, or HS for searches and metrics.
type Objective = metrics.Objective

// Objectives.
const (
	ObjWS = metrics.ObjWS
	ObjFI = metrics.ObjFI
	ObjHS = metrics.ObjHS
)

// Metric helpers (Table III).
var (
	// Slowdowns computes SD = IPC-Shared / IPC-Alone per application.
	Slowdowns = metrics.Slowdowns
	// WS is the weighted speedup of a slowdown vector.
	WS = metrics.WS
	// FI is the fairness index of a slowdown vector.
	FI = metrics.FI
	// HS is the harmonic weighted speedup of a slowdown vector.
	HS = metrics.HS
	// EB computes effective bandwidth from attained BW and combined miss
	// rate.
	EB = metrics.EB
	// EBWS, EBFI, EBHS are the EB-based proxies.
	EBWS = metrics.EBWS
	EBFI = metrics.EBFI
	EBHS = metrics.EBHS
	// AloneRatio is the Fig. 5 bias measure max(m1/m2, m2/m1).
	AloneRatio = metrics.AloneRatio
)

// ProfileOptions configures alone-run profiling.
type ProfileOptions = profile.Options

// AppProfile is one application's alone profile (a Table IV row).
type AppProfile = profile.AppProfile

// ProfileSuite holds alone profiles for a set of applications.
type ProfileSuite = profile.Suite

// Profile profiles every application alone across all TLP levels,
// producing bestTLP, IPC@bestTLP, EB@bestTLP, and the G1..G4 groups.
func Profile(apps []App, opts ProfileOptions) (*ProfileSuite, error) {
	return profile.ProfileSuite(apps, opts)
}

// ProfileCached is Profile with a JSON cache at path ("" disables).
func ProfileCached(path string, apps []App, opts ProfileOptions) (*ProfileSuite, error) {
	return profile.LoadOrProfile(path, apps, opts)
}

// Grid holds one Result per TLP combination of a workload, powering the
// exhaustive comparison points (optWS/FI/HS and BF-WS/FI/HS) and offline
// PBS.
type Grid = search.Grid

// GridOptions configures BuildGrid.
type GridOptions = search.GridOptions

// BuildGrid simulates a workload under every TLP combination.
func BuildGrid(apps []App, opts GridOptions) (*Grid, error) {
	return search.BuildGrid(apps, opts)
}

// Eval scores one grid cell; see SDEval, EBEval, ITEval.
type Eval = search.Eval

// Grid evaluators.
var (
	// SDEval scores by a slowdown-based objective (needs alone IPCs).
	SDEval = search.SDEval
	// EBEval scores by an EB-based objective (optional scaling).
	EBEval = search.EBEval
	// ITEval scores by raw instruction throughput.
	ITEval = search.ITEval
)

// Recorder captures per-window time series (Fig. 11).
type Recorder = trace.Recorder

// NewRecorder builds a Recorder for numApps applications; install its Hook
// as RunOptions.OnWindow.
func NewRecorder(numApps int) *Recorder { return trace.NewRecorder(numApps) }

// Runner is the process-wide bounded simulation executor: a priority
// queue with singleflight dedup that profiles, grids, and evaluations
// all submit to.
type Runner = runner.Runner

// NewRunner starts a private pool (tests, embedding); most callers want
// DefaultRunner.
func NewRunner(workers int) *Runner { return runner.New(workers) }

// DefaultRunner returns the shared process-wide pool.
func DefaultRunner() *Runner { return runner.Default() }

// SimCache is the versioned, content-addressed on-disk cache of
// simulation results; cached results are bit-identical to fresh ones.
type SimCache = simcache.Cache

// OpenSimCache opens (creating if needed) a result cache rooted at dir.
func OpenSimCache(dir string) (*SimCache, error) { return simcache.Open(dir) }

// HardwareCost itemizes the mechanism's hardware overheads (Fig. 8).
type HardwareCost = pbscore.HardwareCost

// CostModel returns the overhead accounting for a machine shape.
func CostModel(numApps, numCores, numMemPartitions int) HardwareCost {
	return pbscore.CostModel(numApps, numCores, numMemPartitions)
}
