# Developer entry points. The Go toolchain is the only dependency.

GO ?= go

.PHONY: all verify race chaos dsweep-chaos bench obs-bench figs-bench \
    ckpt-bench trace-bench search-bench policy-bench dsweep-bench \
    cover test build

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: everything must compile, be gofmt-clean,
# vet clean (plus staticcheck where installed), and pass.
verify:
	$(GO) build ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	$(GO) test ./...
	$(GO) test -race ./internal/runner/... ./internal/resilience/... \
	    ./internal/ckpt/... ./internal/obs/... ./internal/search/... \
	    ./internal/policy/... ./internal/dsweep/...

# race runs the short test suite under the race detector (the grid builder
# and profiler are the only concurrent paths).
race:
	$(GO) test -race -short ./...

# chaos runs the fault-injection suite (DESIGN.md §10) under the race
# detector: injected cache and checkpoint I/O faults, a task panic,
# watchdog trips on a stalled engine, and a real SIGINT mid-grid-build
# with clean resume.
chaos:
	$(GO) test -race -run 'Chaos|Cancel|Watchdog|Degrade|Injected|MidWrite|Fault|SIGINT' \
	    . ./internal/sim/... ./internal/simcache/... ./internal/ckpt/... \
	    ./internal/faultinject/... ./internal/resilience/... \
	    ./internal/runner/... ./internal/cli/...

# dsweep-chaos runs the distributed-sweep failure storyline (DESIGN.md
# §15) under the race detector: a worker killed mid-cell, a
# heartbeat-dropping zombie whose completions are fenced off, injected
# cache write faults, a coordinator restart from its state checkpoint —
# ending bit-identical to a single-process sweep — plus the dsweep
# package's lease/fencing/drain unit tests.
dsweep-chaos:
	$(GO) test -race -run 'TestDsweepChaos' .
	$(GO) test -race ./internal/dsweep/...

# bench snapshots the substrate benchmarks into BENCH_*.json via
# cmd/benchdiff; BENCH=BENCH_2.json picks the output file, and
# OLD=BENCH_1.json additionally prints a comparison table.
BENCH ?= BENCH_1.json
OLD ?=
bench:
	$(GO) run ./cmd/benchdiff -out $(BENCH) $(if $(OLD),-old $(OLD))

# obs-bench enforces the observability overhead contract (DESIGN.md §7):
# the fully-instrumented simulator benchmark must stay within 5% of the
# plain one, measured in the same run, and the result is also diffed
# against the BENCH_1.json baseline.
obs-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'SimulatorCycles' -benchtime 5x -count 5 -out '' \
	    -old BENCH_1.json \
	    -maxratio 'BenchmarkSimulatorCyclesObs/BenchmarkSimulatorCycles=1.05'

# policy-bench enforces the sandbox overhead contract (DESIGN.md §14):
# the sandboxed simulator benchmark must stay within 5% of the plain one,
# measured in the same run. The timings are snapshotted into BENCH_9.json.
policy-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'SimulatorCycles' -benchtime 5x -count 5 -out BENCH_9.json \
	    -maxratio 'BenchmarkSimulatorCyclesSandboxed/BenchmarkSimulatorCycles=1.05'

# figs-bench enforces the warm-cache contract (DESIGN.md §8): a
# `paperfigs -all -quick`-shaped regeneration against a prewarmed result
# cache must take at most 0.2x of the cold run (a >=5x speedup). The
# cold/warm timings are snapshotted into BENCH_3.json.
figs-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'PaperFigsQuick' -benchtime 1x -count 3 -out BENCH_3.json \
	    -maxratio 'BenchmarkPaperFigsQuickWarm/BenchmarkPaperFigsQuickCold=0.2'

# ckpt-bench enforces the sub-linear cold-sweep contract (DESIGN.md §11):
# a cold 36-cell grid sweep forking from prefix checkpoints must take at
# most 0.5x of the same sweep simulated from cycle zero, measured in the
# same run. The cold/forked timings are snapshotted into BENCH_6.json.
ckpt-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'CkptSweep' -benchtime 1x -count 3 -out BENCH_6.json \
	    -maxratio 'BenchmarkCkptSweepForked/BenchmarkCkptSweepCold=0.5'

# trace-bench enforces the span-tracing + provenance overhead contract
# (DESIGN.md §12): a cold grid sweep with a live tracer and ledger must
# stay within 5% of the uninstrumented sweep, measured in the same run.
# The plain/traced timings are snapshotted into BENCH_7.json.
trace-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'TraceSweep' -benchtime 1x -count 3 -out BENCH_7.json \
	    -maxratio 'BenchmarkTraceSweepTraced/BenchmarkTraceSweepPlain=1.05'

# search-bench enforces the adaptive-search contract (DESIGN.md §13): the
# coarse-to-fine successive-halving search over a cold 64-cell TLP grid
# must take at most 0.5x of the exhaustive sweep, measured in the same
# run, while selecting the identical optimum. The exhaustive/adaptive
# timings — and the ebm_cycles_simulated ratio, recorded as an extra
# simcycles/op unit — are snapshotted into BENCH_8.json.
search-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'AdaptiveVsExhaustive' -benchtime 1x -count 3 -out BENCH_8.json \
	    -maxratio 'BenchmarkAdaptiveVsExhaustive/adaptive:BenchmarkAdaptiveVsExhaustive/exhaustive=0.5'

# dsweep-bench enforces the distributed-overhead contract (DESIGN.md
# §15): sweeping the 9-cell grid through the coordinator/worker wire
# protocol with one worker must stay within 10% of the same sweep run
# locally and sequentially, measured in the same run. The local/
# distributed timings are snapshotted into BENCH_10.json.
dsweep-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'DistSweep' -benchtime 1x -count 3 -out BENCH_10.json \
	    -maxratio 'BenchmarkDistSweepOneWorker/BenchmarkDistSweepLocal=1.10'

# cover prints per-package statement coverage and enforces a floor on
# internal/obs, whose span/ledger/exposition paths this repo's explain
# workflow leans on.
OBS_COVER_FLOOR ?= 80.0
cover:
	@$(GO) test -cover ./... | tee /tmp/ebm_cover.txt
	@obs=$$(awk '$$2 == "ebm/internal/obs" { for (i=1;i<=NF;i++) if ($$i ~ /^coverage:/) { sub("%","",$$(i+1)); print $$(i+1) } }' /tmp/ebm_cover.txt); \
	if [ -z "$$obs" ]; then echo "cover: no coverage line for internal/obs"; exit 1; fi; \
	ok=$$(awk -v c="$$obs" -v f="$(OBS_COVER_FLOOR)" 'BEGIN { print (c+0 >= f+0) ? 1 : 0 }'); \
	if [ "$$ok" != 1 ]; then \
	    echo "cover: internal/obs coverage $$obs% is below the $(OBS_COVER_FLOOR)% floor"; exit 1; \
	else \
	    echo "cover: internal/obs coverage $$obs% meets the $(OBS_COVER_FLOOR)% floor"; \
	fi
