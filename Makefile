# Developer entry points. The Go toolchain is the only dependency.

GO ?= go

.PHONY: all verify race chaos bench obs-bench figs-bench ckpt-bench test build

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: everything must compile, be gofmt-clean,
# vet clean (plus staticcheck where installed), and pass.
verify:
	$(GO) build ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	$(GO) test ./...
	$(GO) test -race ./internal/runner/... ./internal/resilience/... \
	    ./internal/ckpt/...

# race runs the short test suite under the race detector (the grid builder
# and profiler are the only concurrent paths).
race:
	$(GO) test -race -short ./...

# chaos runs the fault-injection suite (DESIGN.md §10) under the race
# detector: injected cache and checkpoint I/O faults, a task panic,
# watchdog trips on a stalled engine, and a real SIGINT mid-grid-build
# with clean resume.
chaos:
	$(GO) test -race -run 'Chaos|Cancel|Watchdog|Degrade|Injected|MidWrite|Fault|SIGINT' \
	    . ./internal/sim/... ./internal/simcache/... ./internal/ckpt/... \
	    ./internal/faultinject/... ./internal/resilience/... \
	    ./internal/runner/... ./internal/cli/...

# bench snapshots the substrate benchmarks into BENCH_*.json via
# cmd/benchdiff; BENCH=BENCH_2.json picks the output file, and
# OLD=BENCH_1.json additionally prints a comparison table.
BENCH ?= BENCH_1.json
OLD ?=
bench:
	$(GO) run ./cmd/benchdiff -out $(BENCH) $(if $(OLD),-old $(OLD))

# obs-bench enforces the observability overhead contract (DESIGN.md §7):
# the fully-instrumented simulator benchmark must stay within 5% of the
# plain one, measured in the same run, and the result is also diffed
# against the BENCH_1.json baseline.
obs-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'SimulatorCycles' -benchtime 5x -count 5 -out '' \
	    -old BENCH_1.json \
	    -maxratio 'BenchmarkSimulatorCyclesObs/BenchmarkSimulatorCycles=1.05'

# figs-bench enforces the warm-cache contract (DESIGN.md §8): a
# `paperfigs -all -quick`-shaped regeneration against a prewarmed result
# cache must take at most 0.2x of the cold run (a >=5x speedup). The
# cold/warm timings are snapshotted into BENCH_3.json.
figs-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'PaperFigsQuick' -benchtime 1x -count 3 -out BENCH_3.json \
	    -maxratio 'BenchmarkPaperFigsQuickWarm/BenchmarkPaperFigsQuickCold=0.2'

# ckpt-bench enforces the sub-linear cold-sweep contract (DESIGN.md §11):
# a cold 36-cell grid sweep forking from prefix checkpoints must take at
# most 0.5x of the same sweep simulated from cycle zero, measured in the
# same run. The cold/forked timings are snapshotted into BENCH_6.json.
ckpt-bench:
	$(GO) run ./cmd/benchdiff -pkgs . \
	    -bench 'CkptSweep' -benchtime 1x -count 3 -out BENCH_6.json \
	    -maxratio 'BenchmarkCkptSweepForked/BenchmarkCkptSweepCold=0.5'
